#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pw/api/request.hpp"
#include "pw/fault/breaker.hpp"
#include "pw/obs/metrics.hpp"
#include "pw/serve/plan_cache.hpp"
#include "pw/util/mpmc_queue.hpp"
#include "pw/util/rng.hpp"
#include "pw/util/table.hpp"
#include "pw/util/thread_pool.hpp"
#include "pw/util/timer.hpp"

namespace pw::serve {

/// Retry schedule for solves that fail with a backend fault (and only
/// those: validation errors, deadlines and cancellations never retry).
/// Backoff before attempt k (k >= 1) is
///   initial_backoff * multiplier^(k-1) * (1 + jitter * U[-1, 1))
/// capped so a request never sleeps past its deadline — when the next
/// backoff would cross it, the request fails with kDeadlineExceeded
/// immediately instead of burning the remaining budget asleep.
struct RetryPolicy {
  /// Total solve attempts per backend, including the first (1 = no retry).
  std::size_t max_attempts = 3;
  std::chrono::duration<double> initial_backoff =
      std::chrono::milliseconds(1);
  double multiplier = 2.0;
  /// Relative jitter amplitude in [0, 1]; 0 = deterministic backoff.
  double jitter = 0.5;
  /// Seed for the jitter RNG (deterministic backoff sequences in tests).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Tuning of one SolveService instance.
struct ServiceConfig {
  /// Bounded admission queue depth — the backpressure point.
  std::size_t queue_capacity = 64;

  /// When the queue is full: true blocks the submitter until space frees
  /// (flow control), false completes the future immediately with a typed
  /// SolveError::kQueueFull (load shedding).
  bool block_when_full = false;

  /// Worker threads per backend pool (pools are created lazily, one per
  /// backend that actually receives traffic).
  std::size_t workers_per_backend = 4;

  /// Largest same-plan batch the dispatcher hands one worker as a unit.
  std::size_t max_batch = 8;

  /// Cap on dispatched-but-unfinished requests across all pools; while at
  /// the cap the dispatcher lets work accumulate in the admission queue
  /// (where it backpressures and batches) instead of flooding pool deques.
  /// 0 = auto: max_batch * min(workers_per_backend, hardware_concurrency)
  /// — enough to keep every runnable worker fed, low enough that a host
  /// with fewer cores than workers is not oversubscribed with concurrent
  /// multi-megabyte solves evicting each other's working sets.
  std::size_t max_in_flight = 0;

  /// Memoise completed results by content fingerprint: a request identical
  /// to an already-served one (same shape, config, fields, coefficients)
  /// completes from cache without recomputing. Sound because every backend
  /// is a deterministic pure function of the request.
  bool result_cache = true;
  std::size_t result_cache_capacity = 256;

  /// Admission-time lint strictness (see pw::lint::AdmissionPolicy).
  lint::AdmissionPolicy admission;

  /// Retry schedule for kBackendFault outcomes (see RetryPolicy).
  RetryPolicy retry;

  /// Per-backend circuit breaker: after `failure_threshold` consecutive
  /// faults a backend's breaker opens and requests skip straight to
  /// failover (or fail fast) until a half-open probe succeeds.
  fault::BreakerPolicy breaker;

  /// Graceful degradation: when the requested backend exhausts its retries
  /// (or its breaker is open), re-run the solve on `failover_backend` and
  /// flag the result `degraded`. Disable to surface kBackendFault instead.
  bool failover = true;
  api::Backend failover_backend = api::Backend::kCpuBaseline;

  /// External metrics sink; the service owns a private registry when null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Point-in-time summary of a service: admission/completion counters, the
/// latency and batch-size distributions, cache effectiveness, aggregate
/// throughput, plus the full metrics snapshot for drill-down.
struct ServiceReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;            ///< futures completed ok
  std::uint64_t computed = 0;             ///< solves actually executed
  std::uint64_t result_cache_hits = 0;
  std::uint64_t rejected_options = 0;     ///< typed validation failures
  std::uint64_t rejected_lint = 0;        ///< admission lint rejections
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  // Resilience counters (pw::fault integration).
  std::uint64_t backend_faults = 0;     ///< kBackendFault attempt outcomes
  std::uint64_t retries = 0;            ///< backoff-then-retry sleeps taken
  std::uint64_t retry_recovered = 0;    ///< solves that succeeded on retry
  std::uint64_t failovers = 0;          ///< degraded completions via failover
  std::uint64_t failover_failed = 0;    ///< failover attempt also faulted
  std::uint64_t breaker_opens = 0;      ///< total breaker open transitions
  std::uint64_t breaker_short_circuits = 0;  ///< solves skipped, breaker open
  double uptime_s = 0.0;
  double aggregate_gflops = 0.0;  ///< served FLOPs / uptime
  obs::HistogramSummary latency_s;    ///< submit -> completion
  obs::HistogramSummary batch_size;   ///< per dispatched batch
  obs::RegistrySnapshot metrics;
};

/// {"service": {...counters...}, "metrics": <pw::obs snapshot JSON>}
std::string to_json(const ServiceReport& report);
util::Table to_table(const ServiceReport& report);

/// An asynchronous, batching solve service over pw::api::Solver —
/// the multi-tenant front door the blocking facade cannot be.
///
///   submit(request) --admission--> bounded queue --dispatcher--> batches
///        |                                                        |
///        +-- typed error future on reject                per-backend pools
///
/// Admission validates options against the request's grid and runs the
/// pw::lint battery (amortised per shape via the PlanCache); a rejected
/// request completes its future with a typed error and never reaches a
/// worker. Admitted requests enter a bounded MPMC queue; a dispatcher
/// thread drains it, groups same-plan requests into batches of at most
/// max_batch, and hands each batch to the worker pool of its backend.
/// The dispatcher throttles itself to workers_per_backend * max_batch
/// dispatched-but-unfinished entries, so when workers fall behind, work
/// accumulates in the bounded queue (where it batches and backpressures)
/// rather than in unbounded pool deques. Workers honour cancellation and
/// per-request deadlines, serve identical requests from the result cache,
/// and report queue depth / batch size / latency percentiles / aggregate
/// GFLOPS through pw::obs.
class SolveService {
 public:
  explicit SolveService(ServiceConfig config = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits one request. Always returns a valid future: on rejection
  /// (invalid options, lint failure, backpressure, stopped service) the
  /// future is already completed with the typed error.
  api::SolveFuture submit(api::SolveRequest request);

  /// Convenience fan-in: submit every request, in order.
  std::vector<api::SolveFuture> submit_all(
      std::vector<api::SolveRequest> requests);

  /// Blocks until every admitted request has completed.
  void drain();

  /// Stops the service. With drain_queued, queued work is finished first;
  /// otherwise queued (not yet running) requests complete with
  /// kServiceStopped. Idempotent; the destructor calls shutdown(true).
  void shutdown(bool drain_queued = true);

  bool stopped() const noexcept { return stopped_.load(); }

  ServiceReport report() const;

  const PlanCache& plans() const noexcept { return plans_; }
  obs::MetricsRegistry& metrics() noexcept { return *metrics_; }

 private:
  struct Entry {
    api::SolveRequest request;
    std::shared_ptr<api::detail::SolveState> state;
    std::shared_ptr<const Plan> plan;
    std::uint64_t fingerprint = 0;
    std::uint64_t flops = 0;
    double enqueued_s = 0.0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void dispatcher_loop();
  void dispatch_batch(std::vector<Entry> batch);
  void run_batch(std::vector<Entry>& batch);
  void finish(Entry& entry, api::SolveResult result, bool dispatched = true);
  util::ThreadPool& pool_for(api::Backend backend);
  fault::CircuitBreaker& breaker_for(api::Backend backend);
  /// One solve attempt on `backend` (the entry's request with the backend
  /// swapped in). Consults the "serve.solve.<backend>" fault site first.
  api::SolveResult attempt_solve(const Entry& entry,
                                 const api::BackendSpec& backend);
  /// The full resilience ladder: breaker gate -> retry with backoff ->
  /// failover to config_.failover_backend (degraded). Never throws.
  api::SolveResult resilient_solve(const Entry& entry);
  api::SolveFuture reject(std::shared_ptr<api::detail::SolveState> state,
                          api::SolveError error, api::Backend backend,
                          std::string message = "");

  ServiceConfig config_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;
  PlanCache plans_;
  FingerprintCache fingerprints_;
  util::BoundedMpmcQueue<Entry> queue_;
  util::WallTimer uptime_;

  mutable std::mutex mutex_;  // pools, result cache, pending bookkeeping
  std::condition_variable drained_cv_;
  std::map<api::Backend, std::unique_ptr<util::ThreadPool>> pools_;
  std::map<api::Backend, std::unique_ptr<fault::CircuitBreaker>> breakers_;
  util::Rng retry_rng_;  // jitter; guarded by mutex_
  std::unordered_map<std::uint64_t, std::shared_ptr<const api::SolveResult>>
      results_;
  std::deque<std::uint64_t> result_order_;  // FIFO eviction
  /// Single-flight coalescing: fingerprint -> entries waiting on a compute
  /// already running on some worker. A key's presence (even with no
  /// waiters) marks the fingerprint as in flight; the computing worker
  /// completes every waiter when it finishes, so N concurrent identical
  /// requests cost one solve, deterministically.
  std::unordered_map<std::uint64_t, std::vector<Entry>> coalesced_;
  std::size_t pending_ = 0;    // admitted, not yet completed
  std::size_t in_flight_ = 0;  // dispatched to a pool, not yet completed
  std::uint64_t flops_served_ = 0;

  std::atomic<bool> stopped_{false};
  std::atomic<bool> abandon_{false};
  std::thread dispatcher_;
};

}  // namespace pw::serve
