#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pw/api/request.hpp"
#include "pw/lint/policy.hpp"

namespace pw::serve {

/// Everything the service derives once per request *shape* — the grid
/// dimensions plus the backend/kernel configuration that together determine
/// the pipeline a request constructs. Same key => same pipeline => one
/// admission-time lint pass amortised over every request of that shape.
struct Plan {
  std::string key;
  lint::LintReport lint;   ///< the full admission-time check battery output
  bool admitted = false;   ///< admits(lint, policy) at creation time
  std::string rejection;   ///< first rejecting diagnostic (check: message)
};

/// The canonical cache key for a (dims, SolverOptions) pair: dimensions,
/// backend tag, backend knobs, kernel identity (+ kernel knobs) and kernel
/// config serialised into one string. Anything that changes the constructed
/// pipeline *or the answer* must appear here — in particular the KernelSpec,
/// so an advection plan/result can never be served for a diffusion request
/// with identical dims and payload.
std::string plan_key(const grid::GridDims& dims,
                     const api::SolverOptions& options);

/// Content fingerprint of a whole request — plan key (which embeds the
/// kernel identity and knobs) plus the raw bytes of the three wind fields
/// and, when present, the scheme coefficients (word-wise FNV-1a). Two
/// requests with equal fingerprints ask for the same deterministic
/// computation; the service's result cache is keyed on this.
std::uint64_t request_fingerprint(const api::SolveRequest& request);

/// The payload-content part of request_fingerprint (fields + optional
/// coefficients, no plan key). Null coefficients — any non-advection
/// kernel — hash as their absence.
std::uint64_t payload_hash(const grid::WindState& state,
                           const advect::PwCoefficients* coefficients);
std::uint64_t payload_hash(const grid::WindState& state,
                           const advect::PwCoefficients& coefficients);

/// Memoises payload_hash by payload identity: requests sharing the same
/// state/coefficients shared_ptrs (the serve trace's hot payloads) hash
/// their megabytes of field data once, not once per request. An entry is
/// reused only while weak_ptrs to the original payloads still lock to the
/// same addresses, so a payload freed and reallocated at the same address
/// can never serve a stale hash. Thread-safe; produces exactly the values
/// of the one-shot request_fingerprint.
///
/// Bounded: the memo never holds more than `capacity` entries. Expired
/// owners are purged first; if live payloads alone fill the memo, the
/// oldest entries are evicted outright (a miss later recomputes the hash —
/// correctness never depends on residency). The pre-QoS version only
/// purged expired entries and then inserted regardless, growing without
/// bound under >= capacity simultaneously-live payloads.
class FingerprintCache {
 public:
  explicit FingerprintCache(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  std::uint64_t fingerprint(const api::SolveRequest& request);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct CachedHash {
    std::weak_ptr<const grid::WindState> state;
    std::weak_ptr<const advect::PwCoefficients> coefficients;
    std::uint64_t hash = 0;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<const grid::WindState*, CachedHash> hashes_;
};

/// Thread-safe cache of lint-validated Plans keyed on plan_key. The serve
/// admission path calls lookup() for every request; only the first request
/// of a given shape pays for pipeline construction + the lint battery.
class PlanCache {
 public:
  explicit PlanCache(lint::AdmissionPolicy policy = {}) : policy_(policy) {}

  /// Returns the plan for this shape, creating (and lint-validating) it on
  /// first sight. Never fails: an inadmissible configuration yields a plan
  /// with admitted == false.
  std::shared_ptr<const Plan> lookup(const grid::GridDims& dims,
                                     const api::SolverOptions& options);

  const lint::AdmissionPolicy& policy() const noexcept { return policy_; }

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  lint::AdmissionPolicy policy_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const Plan>> plans_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pw::serve
