#include "pw/serve/sched.hpp"

#include "pw/fault/injector.hpp"

namespace pw::serve::sched {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kFifo:
      return "fifo";
    case Policy::kEdf:
      return "edf";
    case Policy::kWeightedFair:
      return "wfq";
  }
  return "unknown";
}

std::optional<Policy> parse_policy(std::string_view name) {
  for (const Policy policy : kAllPolicies) {
    if (name == to_string(policy)) {
      return policy;
    }
  }
  return std::nullopt;
}

PushFault consult_push_site() {
  if (fault::FaultInjector* injector = fault::armed()) {
    if (const auto fault = injector->fire("serve.sched.push")) {
      fault::apply_latency(*fault);
      if (fault->kind != fault::FaultKind::kSpuriousLatency) {
        return PushFault::kShed;
      }
    }
  }
  return PushFault::kNone;
}

void consult_pop_site() {
  if (fault::FaultInjector* injector = fault::armed()) {
    if (const auto fault = injector->fire("serve.sched.pop")) {
      fault::apply_latency(*fault);
    }
  }
}

}  // namespace pw::serve::sched
