#include "pw/serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "pw/advect/flops.hpp"
#include "pw/fault/injector.hpp"
#include "pw/obs/export.hpp"

namespace pw::serve {

namespace {

std::uint64_t counter_or_zero(const obs::RegistrySnapshot& snapshot,
                              const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << value;
  out += os.str();
}

void append_field(std::string& out, const char* name, std::uint64_t value,
                  bool trailing_comma = true) {
  obs::append_json_string(out, name);
  out += ":";
  out += std::to_string(value);
  if (trailing_comma) {
    out += ",";
  }
}

std::string normalised_tenant(const std::string& tenant) {
  return tenant.empty() ? std::string("default") : tenant;
}

std::string tenant_metric(const std::string& tenant, const char* suffix) {
  return std::string("serve.tenant.") + tenant + "." + suffix;
}

sched::Options scheduler_options(const ServiceConfig& config) {
  sched::Options options;
  options.policy = config.scheduler;
  options.capacity = config.queue_capacity;
  options.edf_window = config.edf_window;
  options.quotas = config.tenant_quotas;
  options.default_quota = config.default_quota;
  return options;
}

TieredCacheConfig cache_config(const ServiceConfig& config) {
  // A quarter of the entry budget stays hot; the rest absorbs demotions.
  TieredCacheConfig tiers;
  const std::size_t total =
      std::max<std::size_t>(1, config.result_cache_capacity);
  tiers.hot_entries = std::max<std::size_t>(1, total / 4);
  tiers.warm_entries = total - tiers.hot_entries;
  tiers.max_bytes = std::max<std::size_t>(1, config.result_cache_bytes);
  return tiers;
}

}  // namespace

std::string to_json(const ServiceReport& report) {
  std::string out = "{";
  obs::append_json_string(out, "service");
  out += ":{";
  append_field(out, "submitted", report.submitted);
  append_field(out, "completed", report.completed);
  append_field(out, "computed", report.computed);
  append_field(out, "result_cache_hits", report.result_cache_hits);
  append_field(out, "rejected_options", report.rejected_options);
  append_field(out, "rejected_lint", report.rejected_lint);
  append_field(out, "rejected_backpressure", report.rejected_backpressure);
  append_field(out, "shed_quota", report.shed_quota);
  append_field(out, "cancelled", report.cancelled);
  append_field(out, "deadline_exceeded", report.deadline_exceeded);
  append_field(out, "plan_cache_hits", report.plan_cache_hits);
  append_field(out, "plan_cache_misses", report.plan_cache_misses);
  append_field(out, "backend_faults", report.backend_faults);
  append_field(out, "retries", report.retries);
  append_field(out, "retry_recovered", report.retry_recovered);
  append_field(out, "failovers", report.failovers);
  append_field(out, "failover_failed", report.failover_failed);
  append_field(out, "breaker_opens", report.breaker_opens);
  append_field(out, "breaker_short_circuits", report.breaker_short_circuits);
  obs::append_json_string(out, "uptime_s");
  out += ":";
  append_number(out, report.uptime_s);
  out += ",";
  obs::append_json_string(out, "aggregate_gflops");
  out += ":";
  append_number(out, report.aggregate_gflops);
  out += "},";
  obs::append_json_string(out, "scheduler");
  out += ":{";
  obs::append_json_string(out, "policy");
  out += ":";
  obs::append_json_string(out, sched::to_string(report.scheduler));
  out += ",";
  append_field(out, "shed_quota", report.shed_quota);
  append_field(out, "unfair_sheds", report.sheds_unfair,
               /*trailing_comma=*/false);
  out += "},";
  obs::append_json_string(out, "cache");
  out += ":{";
  append_field(out, "hot_hits", report.cache_hot_hits);
  append_field(out, "warm_hits", report.cache_warm_hits);
  append_field(out, "evictions", report.cache_evictions);
  append_field(out, "bytes", report.cache_bytes);
  append_field(out, "peak_bytes", report.cache_peak_bytes);
  append_field(out, "byte_cap", report.cache_byte_cap,
               /*trailing_comma=*/false);
  out += "},";
  obs::append_json_string(out, "tenants");
  out += ":[";
  bool first = true;
  for (const TenantReportRow& row : report.tenants) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{";
    obs::append_json_string(out, "tenant");
    out += ":";
    obs::append_json_string(out, row.tenant);
    out += ",";
    append_field(out, "submitted", row.submitted);
    append_field(out, "admitted", row.admitted);
    append_field(out, "shed", row.shed);
    append_field(out, "completed", row.completed);
    obs::append_json_string(out, "p99_latency_s");
    out += ":";
    append_number(out, row.p99_latency_s);
    out += "}";
  }
  out += "],";
  obs::append_json_string(out, "metrics");
  out += ":";
  out += obs::to_json(report.metrics);
  out += "}";
  return out;
}

util::Table to_table(const ServiceReport& report) {
  util::Table table("solve service");
  table.header({"metric", "value"});
  const auto row = [&](const char* name, std::uint64_t value) {
    table.row({name, std::to_string(value)});
  };
  table.row({"scheduler", sched::to_string(report.scheduler)});
  row("submitted", report.submitted);
  row("completed", report.completed);
  row("computed", report.computed);
  row("result cache hits", report.result_cache_hits);
  row("cache hits (hot)", report.cache_hot_hits);
  row("cache hits (warm)", report.cache_warm_hits);
  row("cache evictions", report.cache_evictions);
  row("cache bytes", report.cache_bytes);
  row("cache peak bytes", report.cache_peak_bytes);
  row("cache byte cap", report.cache_byte_cap);
  row("rejected (options)", report.rejected_options);
  row("rejected (lint)", report.rejected_lint);
  row("rejected (backpressure)", report.rejected_backpressure);
  row("shed (quota)", report.shed_quota);
  row("unfair sheds", report.sheds_unfair);
  row("cancelled", report.cancelled);
  row("deadline exceeded", report.deadline_exceeded);
  row("plan cache hits", report.plan_cache_hits);
  row("plan cache misses", report.plan_cache_misses);
  row("backend faults", report.backend_faults);
  row("retries", report.retries);
  row("retry recovered", report.retry_recovered);
  row("failovers (degraded)", report.failovers);
  row("failover failed", report.failover_failed);
  row("breaker opens", report.breaker_opens);
  row("breaker short circuits", report.breaker_short_circuits);
  table.row({"uptime [s]", util::format_double(report.uptime_s, 3)});
  table.row({"aggregate GFLOPS", util::format_double(report.aggregate_gflops, 3)});
  table.row({"latency p50 [s]", util::format_double(report.latency_s.p50, 6)});
  table.row({"latency p95 [s]", util::format_double(report.latency_s.p95, 6)});
  table.row({"latency p99 [s]", util::format_double(report.latency_s.p99, 6)});
  table.row({"mean batch size",
             util::format_double(report.batch_size.mean, 2)});
  for (const TenantReportRow& tenant : report.tenants) {
    table.row({"tenant " + tenant.tenant,
               "admitted=" + std::to_string(tenant.admitted) +
                   " shed=" + std::to_string(tenant.shed) +
                   " completed=" + std::to_string(tenant.completed) +
                   " p99=" + util::format_double(tenant.p99_latency_s, 6) +
                   "s"});
  }
  return table;
}

SolveService::SolveService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics : &own_metrics_),
      plans_(config_.admission),
      fingerprints_(config_.fingerprint_cache_capacity),
      queue_(sched::make_scheduler<ServeEntry>(scheduler_options(config_))),
      retry_rng_(config_.retry.jitter_seed) {
  if (config_.workers_per_backend == 0) {
    config_.workers_per_backend = 1;
  }
  if (config_.max_batch == 0) {
    config_.max_batch = 1;
  }
  if (config_.result_cache) {
    cache_ = std::make_unique<TieredResultCache>(cache_config(config_),
                                                 metrics_);
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SolveService::~SolveService() { shutdown(true); }

api::SolveFuture SolveService::reject(
    std::shared_ptr<api::detail::SolveState> state, api::SolveError error,
    api::Backend backend, std::string message) {
  state->complete(api::error_result(error, backend, std::move(message)));
  return api::SolveFuture(std::move(state));
}

void SolveService::shed(ServeEntry& entry, std::string message) {
  metrics_->counter_add("serve.admission.shed_quota");
  metrics_->counter_add(tenant_metric(entry.tenant, "shed"));
  entry.state->try_begin();
  finish(entry,
         api::error_result(api::SolveError::kQueueFull,
                           entry.request.options.backend.backend(),
                           std::move(message)),
         /*dispatched=*/false);
}

api::SolveFuture SolveService::submit(api::SolveRequest request) {
  auto state = std::make_shared<api::detail::SolveState>();
  const api::Backend backend = request.options.backend.backend();
  const std::string tenant = normalised_tenant(request.tenant);
  metrics_->counter_add("serve.submitted");
  metrics_->counter_add(tenant_metric(tenant, "submitted"));
  {
    std::lock_guard lock(mutex_);
    tenants_.insert(tenant);
  }

  if (stopped_.load()) {
    return reject(std::move(state), api::SolveError::kServiceStopped, backend);
  }
  const api::Kernel kernel = request.options.kernel_spec.kernel();
  if (!request.state) {
    metrics_->counter_add("serve.admission.rejected_options");
    return reject(std::move(state), api::SolveError::kEmptyGrid, backend,
                  "request carries no wind state");
  }
  // Only PW advection carries a coefficients payload; declared stencil
  // kernels travel with their knobs inside the KernelSpec.
  if (kernel == api::Kernel::kAdvectPw && !request.coefficients) {
    metrics_->counter_add("serve.admission.rejected_options");
    return reject(std::move(state), api::SolveError::kEmptyGrid, backend,
                  "advection request carries no coefficients");
  }

  const grid::GridDims dims = request.state->u.dims();
  api::SolveError error = api::validate(request.options, dims);
  if (error == api::SolveError::kNone && request.state->u.halo() != 1) {
    error = api::SolveError::kHaloMismatch;
  }
  if (error != api::SolveError::kNone) {
    metrics_->counter_add("serve.admission.rejected_options");
    return reject(std::move(state), error, backend, api::describe(error));
  }

  // Plan lookup runs the lint battery (amortised per shape). An
  // inadmissible plan completes here — the request never reaches the queue,
  // let alone a worker.
  std::shared_ptr<const Plan> plan = plans_.lookup(dims, request.options);
  if (!plan->admitted) {
    metrics_->counter_add("serve.admission.rejected_lint");
    return reject(std::move(state), api::SolveError::kRejectedByLint, backend,
                  plan->rejection);
  }

  // Deliberately NOT pointing request.options.metrics at the service
  // registry: each solve keeps its private registry (snapshotted into its
  // SolveResult as usual). Routing every solve's spans into the shared
  // registry would make each result snapshot the whole ever-growing
  // registry — quadratic in requests served — and bloat the cached copies.
  // Service-level serve.* metrics land in metrics_ regardless; callers who
  // want per-solve internals in their own sink can still set
  // request.options.metrics explicitly.
  ServeEntry entry;
  entry.request = std::move(request);
  entry.state = state;
  entry.plan = std::move(plan);
  entry.tenant = tenant;
  if (config_.result_cache) {
    entry.fingerprint = fingerprints_.fingerprint(entry.request);
  }
  entry.flops = api::total_flops(entry.request.options.kernel_spec, dims);
  metrics_->counter_add(std::string("serve.kernel.") + api::to_string(kernel) +
                        ".admitted");
  entry.enqueued_s = uptime_.seconds();
  if (entry.request.timeout.count() > 0) {
    entry.deadline = std::chrono::steady_clock::now() + entry.request.timeout;
  }

  // The serve.sched.push fault site: an armed non-latency fault forces an
  // injected shed — typed kQueueFull, named in the message, and exempt
  // from the fairness audit (no real tenant decision was made).
  if (sched::consult_push_site() == sched::PushFault::kShed) {
    metrics_->counter_add("serve.fault.injected_shed");
    metrics_->counter_add(tenant_metric(tenant, "shed"));
    return reject(std::move(state), api::SolveError::kQueueFull, backend,
                  "injected shed at serve.sched.push");
  }

  sched::Scheduled<ServeEntry> item;
  item.meta.tenant = tenant;
  item.meta.priority = entry.request.priority;
  item.meta.deadline = entry.deadline;
  item.meta.cost =
      std::max(1.0, static_cast<double>(entry.flops) / 1e6);  // ~Mflops
  item.value = std::move(entry);

  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  std::vector<sched::Scheduled<ServeEntry>> evicted;
  const bool accepted = config_.block_when_full
                            ? queue_->push(std::move(item))
                            : queue_->try_push(std::move(item), evicted);
  // Quota-shed victims (weighted-fair policy only): queued work evicted in
  // favour of a compliant tenant's request completes kQueueFull, typed.
  for (sched::Scheduled<ServeEntry>& victim : evicted) {
    shed(victim.value,
         "shed by quota: tenant " + victim.meta.tenant +
             " queued over its fair share");
  }
  if (!accepted) {
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    drained_cv_.notify_all();
    if (stopped_.load()) {
      return reject(std::move(state), api::SolveError::kServiceStopped,
                    backend);
    }
    metrics_->counter_add("serve.admission.rejected_backpressure");
    metrics_->counter_add(tenant_metric(tenant, "shed"));
    return reject(std::move(state), api::SolveError::kQueueFull, backend,
                  "admission queue is full");
  }
  metrics_->counter_add(tenant_metric(tenant, "admitted"));
  metrics_->gauge_set("serve.queue.depth",
                      static_cast<double>(queue_->size()));
  return api::SolveFuture(std::move(state));
}

std::vector<api::SolveFuture> SolveService::submit_all(
    std::vector<api::SolveRequest> requests) {
  std::vector<api::SolveFuture> futures;
  futures.reserve(requests.size());
  for (api::SolveRequest& request : requests) {
    futures.push_back(submit(std::move(request)));
  }
  return futures;
}

void SolveService::drain() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [this] { return pending_ == 0; });
}

void SolveService::shutdown(bool drain_queued) {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    // Someone already stopped the service; just wait for in-flight work.
    drain();
    return;
  }
  if (drain_queued) {
    drain();  // queued entries count as pending, so this empties the queue
  } else {
    abandon_.store(true);
    drained_cv_.notify_all();  // release a throttled dispatcher
  }
  queue_->close();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
  drain();  // pool workers may still be finishing dispatched batches
}

std::optional<TieredCacheStats> SolveService::cache_stats() const {
  if (!cache_) {
    return std::nullopt;
  }
  return cache_->stats();
}

util::ThreadPool& SolveService::pool_for(api::Backend backend) {
  std::lock_guard lock(mutex_);
  auto& slot = pools_[backend];
  if (!slot) {
    slot = std::make_unique<util::ThreadPool>(config_.workers_per_backend);
  }
  return *slot;
}

fault::CircuitBreaker& SolveService::breaker_for(api::Backend backend) {
  std::lock_guard lock(mutex_);
  auto& slot = breakers_[backend];
  if (!slot) {
    slot = std::make_unique<fault::CircuitBreaker>(config_.breaker);
  }
  return *slot;
}

api::SolveResult SolveService::attempt_solve(const ServeEntry& entry,
                                             const api::BackendSpec& backend) {
  // Serve-level fault site "serve.solve.<backend>", consulted per attempt:
  // it models a backend failing at dispatch (driver error, lost device)
  // before any compute runs — the granularity the retry / breaker /
  // failover ladder operates at. The site string is only materialised when
  // an injector is armed; the steady-state cost is one atomic load.
  if (fault::FaultInjector* injector = fault::armed()) {
    const std::string site =
        std::string("serve.solve.") + api::to_string(backend.backend());
    if (const auto fault = injector->fire(site)) {
      fault::apply_latency(*fault);
      if (fault->kind != fault::FaultKind::kSpuriousLatency) {
        metrics_->counter_add("serve.fault.injected");
        return api::error_result(
            api::SolveError::kBackendFault, backend.backend(),
            "injected " + std::string(to_string(fault->kind)) + " at " + site);
      }
    }
  }
  api::SolveRequest request = entry.request;
  request.options.backend = backend;
  const api::Solver solver(request.options);
  api::SolveResult result = solver.solve(request);
  metrics_->counter_add("serve.computed");
  return result;
}

api::SolveResult SolveService::resilient_solve(const ServeEntry& entry) {
  const api::BackendSpec& primary = entry.request.options.backend;
  const api::Backend backend = primary.backend();
  fault::CircuitBreaker& breaker = breaker_for(backend);

  api::SolveResult result;
  if (breaker.allow()) {
    const std::size_t max_attempts =
        std::max<std::size_t>(1, config_.retry.max_attempts);
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      result = attempt_solve(entry, primary);
      result.attempts = static_cast<std::uint32_t>(attempt + 1);
      if (result.error != api::SolveError::kBackendFault) {
        breaker.record_success();
        if (attempt > 0 && result.ok()) {
          metrics_->counter_add("serve.retry.recovered");
        }
        return result;
      }
      metrics_->counter_add("serve.fault.backend");
      breaker.record_failure();
      if (attempt + 1 >= max_attempts || !breaker.allow()) {
        break;  // budget exhausted, or the breaker tripped mid-request
      }
      double backoff_s = config_.retry.initial_backoff.count() *
                         std::pow(config_.retry.multiplier,
                                  static_cast<double>(attempt));
      if (config_.retry.jitter > 0.0) {
        double unit;  // U[-1, 1)
        {
          std::lock_guard lock(mutex_);
          unit = retry_rng_.uniform(-1.0, 1.0);
        }
        backoff_s *= std::max(0.0, 1.0 + config_.retry.jitter * unit);
      }
      if (entry.deadline) {
        const auto wake = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(backoff_s));
        if (wake >= *entry.deadline) {
          // Sleeping would burn the rest of the budget: fail now, awake.
          metrics_->counter_add("serve.deadline_exceeded");
          metrics_->counter_add("serve.retry.abandoned");
          api::SolveResult expired = api::error_result(
              api::SolveError::kDeadlineExceeded, backend,
              "deadline would pass during retry backoff");
          expired.attempts = static_cast<std::uint32_t>(attempt + 1);
          return expired;
        }
      }
      metrics_->counter_add("serve.retry");
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    }
  } else {
    metrics_->counter_add("serve.breaker.short_circuit");
    result = api::error_result(
        api::SolveError::kBackendFault, backend,
        std::string("circuit breaker open for backend ") +
            api::to_string(backend));
    result.attempts = 0;
  }

  // Graceful degradation: the primary is out (retries exhausted or breaker
  // open); serve from the failover backend and flag the result degraded.
  if (config_.failover && backend != config_.failover_backend) {
    fault::CircuitBreaker& fallback_breaker =
        breaker_for(config_.failover_backend);
    if (fallback_breaker.allow()) {
      api::SolveResult fallback =
          attempt_solve(entry, api::BackendSpec(config_.failover_backend));
      fallback.attempts = result.attempts + 1;
      if (fallback.error != api::SolveError::kBackendFault) {
        fallback_breaker.record_success();
        if (fallback.ok()) {
          fallback.degraded = true;
          metrics_->counter_add("serve.failover.degraded");
        }
        return fallback;
      }
      fallback_breaker.record_failure();
      metrics_->counter_add("serve.fault.backend");
      metrics_->counter_add("serve.failover.failed");
      return fallback;
    }
    metrics_->counter_add("serve.breaker.short_circuit");
    metrics_->counter_add("serve.failover.failed");
  }
  return result;
}

void SolveService::dispatcher_loop() {
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t max_in_flight =
      config_.max_in_flight != 0
          ? config_.max_in_flight
          : config_.max_batch * std::min(config_.workers_per_backend, cores);
  for (;;) {
    {
      // Throttle: with every worker slot covered, leave requests in the
      // bounded queue — that is where they batch up (and where EDF/WFQ
      // reorder) and where backpressure must bite. Pool deques are
      // unbounded and must stay near-empty.
      std::unique_lock lock(mutex_);
      drained_cv_.wait(lock, [&] {
        return in_flight_ < max_in_flight || abandon_.load();
      });
    }
    std::optional<sched::Scheduled<ServeEntry>> first =
        queue_->pop_for(std::chrono::milliseconds(50));
    if (!first) {
      if (queue_->closed()) {
        return;  // closed and fully drained
      }
      continue;
    }
    sched::consult_pop_site();  // latency-only: a slow dispatcher
    std::vector<ServeEntry> batch;
    batch.push_back(std::move(first->value));
    while (batch.size() < config_.max_batch) {
      std::optional<sched::Scheduled<ServeEntry>> next = queue_->try_pop();
      if (!next) {
        break;
      }
      batch.push_back(std::move(next->value));
    }
    metrics_->gauge_set("serve.queue.depth",
                        static_cast<double>(queue_->size()));

    if (abandon_.load()) {
      // Abandoning shutdown: complete leftovers without running them.
      for (ServeEntry& entry : batch) {
        entry.state->try_begin();
        finish(entry,
               api::error_result(api::SolveError::kServiceStopped,
                                 entry.request.options.backend.backend(),
                                 "service stopped before the request ran"),
               /*dispatched=*/false);
      }
      continue;
    }

    // Group the drained slice by plan: same shape + same configuration runs
    // back-to-back on one worker (warm plan, warm caches).
    std::map<std::string, std::vector<ServeEntry>> groups;
    for (ServeEntry& entry : batch) {
      groups[entry.plan->key].push_back(std::move(entry));
    }
    for (auto& [key, group] : groups) {
      dispatch_batch(std::move(group));
    }
  }
}

void SolveService::dispatch_batch(std::vector<ServeEntry> batch) {
  metrics_->observe("serve.batch.size", static_cast<double>(batch.size()));
  {
    std::lock_guard lock(mutex_);
    in_flight_ += batch.size();
  }
  const api::Backend backend =
      batch.front().request.options.backend.backend();
  util::ThreadPool& pool = pool_for(backend);
  auto shared = std::make_shared<std::vector<ServeEntry>>(std::move(batch));
  pool.submit([this, shared] { run_batch(*shared); });
}

void SolveService::run_batch(std::vector<ServeEntry>& batch) {
  for (ServeEntry& entry : batch) {
    const api::Backend backend = entry.request.options.backend.backend();
    if (!entry.state->try_begin()) {
      metrics_->counter_add("serve.cancelled");
      finish(entry, api::error_result(api::SolveError::kCancelled, backend));
      continue;
    }
    if (entry.deadline && std::chrono::steady_clock::now() > *entry.deadline) {
      metrics_->counter_add("serve.deadline_exceeded");
      finish(entry, api::error_result(api::SolveError::kDeadlineExceeded,
                                      backend,
                                      "deadline passed while queued"));
      continue;
    }
    if (config_.result_cache) {
      std::shared_ptr<const api::SolveResult> cached;
      bool coalesced = false;
      {
        // Lock order everywhere: mutex_ before the cache's internal mutex.
        std::lock_guard lock(mutex_);
        cached = cache_->get(entry.fingerprint);
        if (!cached) {
          // Single-flight: if this fingerprint is already being computed on
          // some worker, park the entry with it instead of computing the
          // same answer twice; otherwise claim it (empty waiter list).
          const auto flight = coalesced_.find(entry.fingerprint);
          if (flight != coalesced_.end()) {
            flight->second.push_back(std::move(entry));
            coalesced = true;
          } else {
            coalesced_.emplace(entry.fingerprint, std::vector<ServeEntry>{});
          }
        }
      }
      if (cached) {
        metrics_->counter_add("serve.cache.hits");
        api::SolveResult result = *cached;
        result.cached = true;
        finish(entry, std::move(result));
        continue;
      }
      if (coalesced) {
        continue;  // the computing worker will finish it
      }
    }

    api::SolveResult result = resilient_solve(entry);

    std::vector<ServeEntry> waiters;
    if (config_.result_cache) {
      std::lock_guard lock(mutex_);
      // Degraded results are served but never cached: the cache must only
      // memoise what the *requested* backend computed, so a recovered
      // backend is not shadowed by stale failover answers.
      if (result.error == api::SolveError::kNone && !result.degraded) {
        cache_->put(entry.fingerprint,
                    std::make_shared<const api::SolveResult>(result));
      }
      const auto flight = coalesced_.find(entry.fingerprint);
      if (flight != coalesced_.end()) {
        waiters = std::move(flight->second);
        coalesced_.erase(flight);
      }
    }
    // Waiters ride on this compute: same payloads, same deterministic
    // answer. An error propagates to them too — typed, but not counted (or
    // flagged) as a cache hit, since nothing was cached.
    const bool compute_ok = result.error == api::SolveError::kNone;
    for (ServeEntry& waiter : waiters) {
      if (compute_ok) {
        metrics_->counter_add("serve.cache.hits");
        metrics_->counter_add("serve.cache.coalesced");
      }
      api::SolveResult shared_result = result;
      shared_result.cached = compute_ok;
      finish(waiter, std::move(shared_result));
    }
    finish(entry, std::move(result));
  }
}

void SolveService::finish(ServeEntry& entry, api::SolveResult result,
                          bool dispatched) {
  const bool ok = result.error == api::SolveError::kNone;
  // Metrics and bookkeeping are published before complete() wakes waiters,
  // so a report() taken right after wait() returns already includes this
  // request.
  const double latency = uptime_.seconds() - entry.enqueued_s;
  metrics_->observe("serve.latency_s", latency);
  metrics_->observe(tenant_metric(entry.tenant, "latency_s"), latency);
  if (ok) {
    metrics_->counter_add("serve.requests.completed");
    metrics_->counter_add(tenant_metric(entry.tenant, "completed"));
    metrics_->counter_add(
        std::string("serve.kernel.") +
        api::to_string(entry.request.options.kernel_spec) + ".completed");
  }
  {
    std::lock_guard lock(mutex_);
    if (ok) {
      flops_served_ += entry.flops;
    }
  }
  entry.state->complete(std::move(result));
  {
    std::lock_guard lock(mutex_);
    --pending_;
    if (dispatched) {
      --in_flight_;
    }
  }
  drained_cv_.notify_all();
}

ServiceReport SolveService::report() const {
  ServiceReport report;
  obs::RegistrySnapshot snapshot = metrics_->snapshot();
  report.submitted = counter_or_zero(snapshot, "serve.submitted");
  report.completed = counter_or_zero(snapshot, "serve.requests.completed");
  report.computed = counter_or_zero(snapshot, "serve.computed");
  report.result_cache_hits = counter_or_zero(snapshot, "serve.cache.hits");
  report.rejected_options =
      counter_or_zero(snapshot, "serve.admission.rejected_options");
  report.rejected_lint =
      counter_or_zero(snapshot, "serve.admission.rejected_lint");
  report.rejected_backpressure =
      counter_or_zero(snapshot, "serve.admission.rejected_backpressure");
  report.shed_quota = counter_or_zero(snapshot, "serve.admission.shed_quota");
  report.cancelled = counter_or_zero(snapshot, "serve.cancelled");
  report.deadline_exceeded =
      counter_or_zero(snapshot, "serve.deadline_exceeded");
  report.plan_cache_hits = plans_.hits();
  report.plan_cache_misses = plans_.misses();
  report.backend_faults = counter_or_zero(snapshot, "serve.fault.backend");
  report.retries = counter_or_zero(snapshot, "serve.retry");
  report.retry_recovered = counter_or_zero(snapshot, "serve.retry.recovered");
  report.failovers = counter_or_zero(snapshot, "serve.failover.degraded");
  report.failover_failed =
      counter_or_zero(snapshot, "serve.failover.failed");
  report.breaker_short_circuits =
      counter_or_zero(snapshot, "serve.breaker.short_circuit");
  {
    std::lock_guard lock(mutex_);
    for (const auto& [backend, breaker] : breakers_) {
      report.breaker_opens += breaker->opens();
    }
  }
  report.scheduler = queue_->policy();
  report.sheds_unfair = queue_->audit().unfair_sheds;
  if (cache_) {
    const TieredCacheStats stats = cache_->stats();
    report.cache_hot_hits = stats.hot_hits;
    report.cache_warm_hits = stats.warm_hits;
    report.cache_evictions = stats.evictions;
    report.cache_bytes = stats.bytes;
    report.cache_peak_bytes = stats.peak_bytes;
    report.cache_byte_cap = stats.byte_cap;
  }
  report.uptime_s = uptime_.seconds();
  {
    std::lock_guard lock(mutex_);
    report.aggregate_gflops =
        report.uptime_s > 0.0
            ? static_cast<double>(flops_served_) / report.uptime_s / 1e9
            : 0.0;
    for (const std::string& tenant : tenants_) {
      TenantReportRow row;
      row.tenant = tenant;
      row.submitted =
          counter_or_zero(snapshot, tenant_metric(tenant, "submitted"));
      row.admitted =
          counter_or_zero(snapshot, tenant_metric(tenant, "admitted"));
      row.shed = counter_or_zero(snapshot, tenant_metric(tenant, "shed"));
      row.completed =
          counter_or_zero(snapshot, tenant_metric(tenant, "completed"));
      const auto hist =
          snapshot.histograms.find(tenant_metric(tenant, "latency_s"));
      if (hist != snapshot.histograms.end()) {
        row.p99_latency_s = hist->second.p99;
      }
      report.tenants.push_back(std::move(row));
    }
  }
  const auto latency = snapshot.histograms.find("serve.latency_s");
  if (latency != snapshot.histograms.end()) {
    report.latency_s = latency->second;
  }
  const auto batch = snapshot.histograms.find("serve.batch.size");
  if (batch != snapshot.histograms.end()) {
    report.batch_size = batch->second;
  }
  report.metrics = std::move(snapshot);
  return report;
}

}  // namespace pw::serve
