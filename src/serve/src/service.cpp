#include "pw/serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "pw/advect/flops.hpp"
#include "pw/fault/injector.hpp"
#include "pw/obs/export.hpp"

namespace pw::serve {

namespace {

std::uint64_t counter_or_zero(const obs::RegistrySnapshot& snapshot,
                              const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << value;
  out += os.str();
}

void append_field(std::string& out, const char* name, std::uint64_t value,
                  bool trailing_comma = true) {
  obs::append_json_string(out, name);
  out += ":";
  out += std::to_string(value);
  if (trailing_comma) {
    out += ",";
  }
}

}  // namespace

std::string to_json(const ServiceReport& report) {
  std::string out = "{";
  obs::append_json_string(out, "service");
  out += ":{";
  append_field(out, "submitted", report.submitted);
  append_field(out, "completed", report.completed);
  append_field(out, "computed", report.computed);
  append_field(out, "result_cache_hits", report.result_cache_hits);
  append_field(out, "rejected_options", report.rejected_options);
  append_field(out, "rejected_lint", report.rejected_lint);
  append_field(out, "rejected_backpressure", report.rejected_backpressure);
  append_field(out, "cancelled", report.cancelled);
  append_field(out, "deadline_exceeded", report.deadline_exceeded);
  append_field(out, "plan_cache_hits", report.plan_cache_hits);
  append_field(out, "plan_cache_misses", report.plan_cache_misses);
  append_field(out, "backend_faults", report.backend_faults);
  append_field(out, "retries", report.retries);
  append_field(out, "retry_recovered", report.retry_recovered);
  append_field(out, "failovers", report.failovers);
  append_field(out, "failover_failed", report.failover_failed);
  append_field(out, "breaker_opens", report.breaker_opens);
  append_field(out, "breaker_short_circuits", report.breaker_short_circuits);
  obs::append_json_string(out, "uptime_s");
  out += ":";
  append_number(out, report.uptime_s);
  out += ",";
  obs::append_json_string(out, "aggregate_gflops");
  out += ":";
  append_number(out, report.aggregate_gflops);
  out += "},";
  obs::append_json_string(out, "metrics");
  out += ":";
  out += obs::to_json(report.metrics);
  out += "}";
  return out;
}

util::Table to_table(const ServiceReport& report) {
  util::Table table("solve service");
  table.header({"metric", "value"});
  const auto row = [&](const char* name, std::uint64_t value) {
    table.row({name, std::to_string(value)});
  };
  row("submitted", report.submitted);
  row("completed", report.completed);
  row("computed", report.computed);
  row("result cache hits", report.result_cache_hits);
  row("rejected (options)", report.rejected_options);
  row("rejected (lint)", report.rejected_lint);
  row("rejected (backpressure)", report.rejected_backpressure);
  row("cancelled", report.cancelled);
  row("deadline exceeded", report.deadline_exceeded);
  row("plan cache hits", report.plan_cache_hits);
  row("plan cache misses", report.plan_cache_misses);
  row("backend faults", report.backend_faults);
  row("retries", report.retries);
  row("retry recovered", report.retry_recovered);
  row("failovers (degraded)", report.failovers);
  row("failover failed", report.failover_failed);
  row("breaker opens", report.breaker_opens);
  row("breaker short circuits", report.breaker_short_circuits);
  table.row({"uptime [s]", util::format_double(report.uptime_s, 3)});
  table.row({"aggregate GFLOPS", util::format_double(report.aggregate_gflops, 3)});
  table.row({"latency p50 [s]", util::format_double(report.latency_s.p50, 6)});
  table.row({"latency p95 [s]", util::format_double(report.latency_s.p95, 6)});
  table.row({"latency p99 [s]", util::format_double(report.latency_s.p99, 6)});
  table.row({"mean batch size",
             util::format_double(report.batch_size.mean, 2)});
  return table;
}

SolveService::SolveService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics != nullptr ? config_.metrics : &own_metrics_),
      plans_(config_.admission),
      queue_(config_.queue_capacity),
      retry_rng_(config_.retry.jitter_seed) {
  if (config_.workers_per_backend == 0) {
    config_.workers_per_backend = 1;
  }
  if (config_.max_batch == 0) {
    config_.max_batch = 1;
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SolveService::~SolveService() { shutdown(true); }

api::SolveFuture SolveService::reject(
    std::shared_ptr<api::detail::SolveState> state, api::SolveError error,
    api::Backend backend, std::string message) {
  state->complete(api::error_result(error, backend, std::move(message)));
  return api::SolveFuture(std::move(state));
}

api::SolveFuture SolveService::submit(api::SolveRequest request) {
  auto state = std::make_shared<api::detail::SolveState>();
  const api::Backend backend = request.options.backend.backend();
  metrics_->counter_add("serve.submitted");

  if (stopped_.load()) {
    return reject(std::move(state), api::SolveError::kServiceStopped, backend);
  }
  const api::Kernel kernel = request.options.kernel_spec.kernel();
  if (!request.state) {
    metrics_->counter_add("serve.admission.rejected_options");
    return reject(std::move(state), api::SolveError::kEmptyGrid, backend,
                  "request carries no wind state");
  }
  // Only PW advection carries a coefficients payload; declared stencil
  // kernels travel with their knobs inside the KernelSpec.
  if (kernel == api::Kernel::kAdvectPw && !request.coefficients) {
    metrics_->counter_add("serve.admission.rejected_options");
    return reject(std::move(state), api::SolveError::kEmptyGrid, backend,
                  "advection request carries no coefficients");
  }

  const grid::GridDims dims = request.state->u.dims();
  api::SolveError error = api::validate(request.options, dims);
  if (error == api::SolveError::kNone && request.state->u.halo() != 1) {
    error = api::SolveError::kHaloMismatch;
  }
  if (error != api::SolveError::kNone) {
    metrics_->counter_add("serve.admission.rejected_options");
    return reject(std::move(state), error, backend, api::describe(error));
  }

  // Plan lookup runs the lint battery (amortised per shape). An
  // inadmissible plan completes here — the request never reaches the queue,
  // let alone a worker.
  std::shared_ptr<const Plan> plan = plans_.lookup(dims, request.options);
  if (!plan->admitted) {
    metrics_->counter_add("serve.admission.rejected_lint");
    return reject(std::move(state), api::SolveError::kRejectedByLint, backend,
                  plan->rejection);
  }

  // Deliberately NOT pointing request.options.metrics at the service
  // registry: each solve keeps its private registry (snapshotted into its
  // SolveResult as usual). Routing every solve's spans into the shared
  // registry would make each result snapshot the whole ever-growing
  // registry — quadratic in requests served — and bloat the cached copies.
  // Service-level serve.* metrics land in metrics_ regardless; callers who
  // want per-solve internals in their own sink can still set
  // request.options.metrics explicitly.
  Entry entry;
  entry.request = std::move(request);
  entry.state = state;
  entry.plan = std::move(plan);
  if (config_.result_cache) {
    entry.fingerprint = fingerprints_.fingerprint(entry.request);
  }
  entry.flops = api::total_flops(entry.request.options.kernel_spec, dims);
  metrics_->counter_add(std::string("serve.kernel.") + api::to_string(kernel) +
                        ".admitted");
  entry.enqueued_s = uptime_.seconds();
  if (entry.request.timeout.count() > 0) {
    entry.deadline = std::chrono::steady_clock::now() + entry.request.timeout;
  }

  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  const bool accepted = config_.block_when_full
                            ? queue_.push(std::move(entry))
                            : queue_.try_push(std::move(entry));
  if (!accepted) {
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    drained_cv_.notify_all();
    if (stopped_.load()) {
      return reject(std::move(state), api::SolveError::kServiceStopped,
                    backend);
    }
    metrics_->counter_add("serve.admission.rejected_backpressure");
    return reject(std::move(state), api::SolveError::kQueueFull, backend,
                  "admission queue is full");
  }
  metrics_->gauge_set("serve.queue.depth",
                      static_cast<double>(queue_.size()));
  return api::SolveFuture(std::move(state));
}

std::vector<api::SolveFuture> SolveService::submit_all(
    std::vector<api::SolveRequest> requests) {
  std::vector<api::SolveFuture> futures;
  futures.reserve(requests.size());
  for (api::SolveRequest& request : requests) {
    futures.push_back(submit(std::move(request)));
  }
  return futures;
}

void SolveService::drain() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [this] { return pending_ == 0; });
}

void SolveService::shutdown(bool drain_queued) {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    // Someone already stopped the service; just wait for in-flight work.
    drain();
    return;
  }
  if (drain_queued) {
    drain();  // queued entries count as pending, so this empties the queue
  } else {
    abandon_.store(true);
    drained_cv_.notify_all();  // release a throttled dispatcher
  }
  queue_.close();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
  drain();  // pool workers may still be finishing dispatched batches
}

util::ThreadPool& SolveService::pool_for(api::Backend backend) {
  std::lock_guard lock(mutex_);
  auto& slot = pools_[backend];
  if (!slot) {
    slot = std::make_unique<util::ThreadPool>(config_.workers_per_backend);
  }
  return *slot;
}

fault::CircuitBreaker& SolveService::breaker_for(api::Backend backend) {
  std::lock_guard lock(mutex_);
  auto& slot = breakers_[backend];
  if (!slot) {
    slot = std::make_unique<fault::CircuitBreaker>(config_.breaker);
  }
  return *slot;
}

api::SolveResult SolveService::attempt_solve(const Entry& entry,
                                             const api::BackendSpec& backend) {
  // Serve-level fault site "serve.solve.<backend>", consulted per attempt:
  // it models a backend failing at dispatch (driver error, lost device)
  // before any compute runs — the granularity the retry / breaker /
  // failover ladder operates at. The site string is only materialised when
  // an injector is armed; the steady-state cost is one atomic load.
  if (fault::FaultInjector* injector = fault::armed()) {
    const std::string site =
        std::string("serve.solve.") + api::to_string(backend.backend());
    if (const auto fault = injector->fire(site)) {
      fault::apply_latency(*fault);
      if (fault->kind != fault::FaultKind::kSpuriousLatency) {
        metrics_->counter_add("serve.fault.injected");
        return api::error_result(
            api::SolveError::kBackendFault, backend.backend(),
            "injected " + std::string(to_string(fault->kind)) + " at " + site);
      }
    }
  }
  api::SolveRequest request = entry.request;
  request.options.backend = backend;
  const api::Solver solver(request.options);
  api::SolveResult result = solver.solve(request);
  metrics_->counter_add("serve.computed");
  return result;
}

api::SolveResult SolveService::resilient_solve(const Entry& entry) {
  const api::BackendSpec& primary = entry.request.options.backend;
  const api::Backend backend = primary.backend();
  fault::CircuitBreaker& breaker = breaker_for(backend);

  api::SolveResult result;
  if (breaker.allow()) {
    const std::size_t max_attempts =
        std::max<std::size_t>(1, config_.retry.max_attempts);
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      result = attempt_solve(entry, primary);
      result.attempts = static_cast<std::uint32_t>(attempt + 1);
      if (result.error != api::SolveError::kBackendFault) {
        breaker.record_success();
        if (attempt > 0 && result.ok()) {
          metrics_->counter_add("serve.retry.recovered");
        }
        return result;
      }
      metrics_->counter_add("serve.fault.backend");
      breaker.record_failure();
      if (attempt + 1 >= max_attempts || !breaker.allow()) {
        break;  // budget exhausted, or the breaker tripped mid-request
      }
      double backoff_s = config_.retry.initial_backoff.count() *
                         std::pow(config_.retry.multiplier,
                                  static_cast<double>(attempt));
      if (config_.retry.jitter > 0.0) {
        double unit;  // U[-1, 1)
        {
          std::lock_guard lock(mutex_);
          unit = retry_rng_.uniform(-1.0, 1.0);
        }
        backoff_s *= std::max(0.0, 1.0 + config_.retry.jitter * unit);
      }
      if (entry.deadline) {
        const auto wake = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(backoff_s));
        if (wake >= *entry.deadline) {
          // Sleeping would burn the rest of the budget: fail now, awake.
          metrics_->counter_add("serve.deadline_exceeded");
          metrics_->counter_add("serve.retry.abandoned");
          api::SolveResult expired = api::error_result(
              api::SolveError::kDeadlineExceeded, backend,
              "deadline would pass during retry backoff");
          expired.attempts = static_cast<std::uint32_t>(attempt + 1);
          return expired;
        }
      }
      metrics_->counter_add("serve.retry");
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    }
  } else {
    metrics_->counter_add("serve.breaker.short_circuit");
    result = api::error_result(
        api::SolveError::kBackendFault, backend,
        std::string("circuit breaker open for backend ") +
            api::to_string(backend));
    result.attempts = 0;
  }

  // Graceful degradation: the primary is out (retries exhausted or breaker
  // open); serve from the failover backend and flag the result degraded.
  if (config_.failover && backend != config_.failover_backend) {
    fault::CircuitBreaker& fallback_breaker =
        breaker_for(config_.failover_backend);
    if (fallback_breaker.allow()) {
      api::SolveResult fallback =
          attempt_solve(entry, api::BackendSpec(config_.failover_backend));
      fallback.attempts = result.attempts + 1;
      if (fallback.error != api::SolveError::kBackendFault) {
        fallback_breaker.record_success();
        if (fallback.ok()) {
          fallback.degraded = true;
          metrics_->counter_add("serve.failover.degraded");
        }
        return fallback;
      }
      fallback_breaker.record_failure();
      metrics_->counter_add("serve.fault.backend");
      metrics_->counter_add("serve.failover.failed");
      return fallback;
    }
    metrics_->counter_add("serve.breaker.short_circuit");
    metrics_->counter_add("serve.failover.failed");
  }
  return result;
}

void SolveService::dispatcher_loop() {
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t max_in_flight =
      config_.max_in_flight != 0
          ? config_.max_in_flight
          : config_.max_batch * std::min(config_.workers_per_backend, cores);
  for (;;) {
    {
      // Throttle: with every worker slot covered, leave requests in the
      // bounded queue — that is where they batch up and where backpressure
      // must bite. Pool deques are unbounded and must stay near-empty.
      std::unique_lock lock(mutex_);
      drained_cv_.wait(lock, [&] {
        return in_flight_ < max_in_flight || abandon_.load();
      });
    }
    std::optional<Entry> first = queue_.pop_for(std::chrono::milliseconds(50));
    if (!first) {
      if (queue_.closed()) {
        return;  // closed and fully drained
      }
      continue;
    }
    std::vector<Entry> batch;
    batch.push_back(std::move(*first));
    while (batch.size() < config_.max_batch) {
      std::optional<Entry> next = queue_.try_pop();
      if (!next) {
        break;
      }
      batch.push_back(std::move(*next));
    }
    metrics_->gauge_set("serve.queue.depth",
                        static_cast<double>(queue_.size()));

    if (abandon_.load()) {
      // Abandoning shutdown: complete leftovers without running them.
      for (Entry& entry : batch) {
        entry.state->try_begin();
        finish(entry,
               api::error_result(api::SolveError::kServiceStopped,
                                 entry.request.options.backend.backend(),
                                 "service stopped before the request ran"),
               /*dispatched=*/false);
      }
      continue;
    }

    // Group the drained slice by plan: same shape + same configuration runs
    // back-to-back on one worker (warm plan, warm caches).
    std::map<std::string, std::vector<Entry>> groups;
    for (Entry& entry : batch) {
      groups[entry.plan->key].push_back(std::move(entry));
    }
    for (auto& [key, group] : groups) {
      dispatch_batch(std::move(group));
    }
  }
}

void SolveService::dispatch_batch(std::vector<Entry> batch) {
  metrics_->observe("serve.batch.size", static_cast<double>(batch.size()));
  {
    std::lock_guard lock(mutex_);
    in_flight_ += batch.size();
  }
  const api::Backend backend =
      batch.front().request.options.backend.backend();
  util::ThreadPool& pool = pool_for(backend);
  auto shared = std::make_shared<std::vector<Entry>>(std::move(batch));
  pool.submit([this, shared] { run_batch(*shared); });
}

void SolveService::run_batch(std::vector<Entry>& batch) {
  for (Entry& entry : batch) {
    const api::Backend backend = entry.request.options.backend.backend();
    if (!entry.state->try_begin()) {
      metrics_->counter_add("serve.cancelled");
      finish(entry, api::error_result(api::SolveError::kCancelled, backend));
      continue;
    }
    if (entry.deadline && std::chrono::steady_clock::now() > *entry.deadline) {
      metrics_->counter_add("serve.deadline_exceeded");
      finish(entry, api::error_result(api::SolveError::kDeadlineExceeded,
                                      backend,
                                      "deadline passed while queued"));
      continue;
    }
    if (config_.result_cache) {
      std::shared_ptr<const api::SolveResult> cached;
      bool coalesced = false;
      {
        std::lock_guard lock(mutex_);
        const auto it = results_.find(entry.fingerprint);
        if (it != results_.end()) {
          cached = it->second;
        } else {
          // Single-flight: if this fingerprint is already being computed on
          // some worker, park the entry with it instead of computing the
          // same answer twice; otherwise claim it (empty waiter list).
          const auto flight = coalesced_.find(entry.fingerprint);
          if (flight != coalesced_.end()) {
            flight->second.push_back(std::move(entry));
            coalesced = true;
          } else {
            coalesced_.emplace(entry.fingerprint, std::vector<Entry>{});
          }
        }
      }
      if (cached) {
        metrics_->counter_add("serve.cache.hits");
        api::SolveResult result = *cached;
        result.cached = true;
        finish(entry, std::move(result));
        continue;
      }
      if (coalesced) {
        continue;  // the computing worker will finish it
      }
    }

    api::SolveResult result = resilient_solve(entry);

    std::vector<Entry> waiters;
    if (config_.result_cache) {
      std::lock_guard lock(mutex_);
      // Degraded results are served but never cached: the cache must only
      // memoise what the *requested* backend computed, so a recovered
      // backend is not shadowed by stale failover answers.
      if (result.error == api::SolveError::kNone && !result.degraded &&
          results_
              .emplace(entry.fingerprint,
                       std::make_shared<const api::SolveResult>(result))
              .second) {
        result_order_.push_back(entry.fingerprint);
        while (result_order_.size() > config_.result_cache_capacity) {
          results_.erase(result_order_.front());
          result_order_.pop_front();
        }
      }
      const auto flight = coalesced_.find(entry.fingerprint);
      if (flight != coalesced_.end()) {
        waiters = std::move(flight->second);
        coalesced_.erase(flight);
      }
    }
    // Waiters ride on this compute: same payloads, same deterministic
    // answer. An error propagates to them too — typed, but not counted (or
    // flagged) as a cache hit, since nothing was cached.
    const bool compute_ok = result.error == api::SolveError::kNone;
    for (Entry& waiter : waiters) {
      if (compute_ok) {
        metrics_->counter_add("serve.cache.hits");
        metrics_->counter_add("serve.cache.coalesced");
      }
      api::SolveResult shared_result = result;
      shared_result.cached = compute_ok;
      finish(waiter, std::move(shared_result));
    }
    finish(entry, std::move(result));
  }
}

void SolveService::finish(Entry& entry, api::SolveResult result,
                          bool dispatched) {
  const bool ok = result.error == api::SolveError::kNone;
  // Metrics and bookkeeping are published before complete() wakes waiters,
  // so a report() taken right after wait() returns already includes this
  // request.
  metrics_->observe("serve.latency_s", uptime_.seconds() - entry.enqueued_s);
  if (ok) {
    metrics_->counter_add("serve.requests.completed");
    metrics_->counter_add(
        std::string("serve.kernel.") +
        api::to_string(entry.request.options.kernel_spec) + ".completed");
  }
  {
    std::lock_guard lock(mutex_);
    if (ok) {
      flops_served_ += entry.flops;
    }
  }
  entry.state->complete(std::move(result));
  {
    std::lock_guard lock(mutex_);
    --pending_;
    if (dispatched) {
      --in_flight_;
    }
  }
  drained_cv_.notify_all();
}

ServiceReport SolveService::report() const {
  ServiceReport report;
  obs::RegistrySnapshot snapshot = metrics_->snapshot();
  report.submitted = counter_or_zero(snapshot, "serve.submitted");
  report.completed = counter_or_zero(snapshot, "serve.requests.completed");
  report.computed = counter_or_zero(snapshot, "serve.computed");
  report.result_cache_hits = counter_or_zero(snapshot, "serve.cache.hits");
  report.rejected_options =
      counter_or_zero(snapshot, "serve.admission.rejected_options");
  report.rejected_lint =
      counter_or_zero(snapshot, "serve.admission.rejected_lint");
  report.rejected_backpressure =
      counter_or_zero(snapshot, "serve.admission.rejected_backpressure");
  report.cancelled = counter_or_zero(snapshot, "serve.cancelled");
  report.deadline_exceeded =
      counter_or_zero(snapshot, "serve.deadline_exceeded");
  report.plan_cache_hits = plans_.hits();
  report.plan_cache_misses = plans_.misses();
  report.backend_faults = counter_or_zero(snapshot, "serve.fault.backend");
  report.retries = counter_or_zero(snapshot, "serve.retry");
  report.retry_recovered = counter_or_zero(snapshot, "serve.retry.recovered");
  report.failovers = counter_or_zero(snapshot, "serve.failover.degraded");
  report.failover_failed =
      counter_or_zero(snapshot, "serve.failover.failed");
  report.breaker_short_circuits =
      counter_or_zero(snapshot, "serve.breaker.short_circuit");
  {
    std::lock_guard lock(mutex_);
    for (const auto& [backend, breaker] : breakers_) {
      report.breaker_opens += breaker->opens();
    }
  }
  report.uptime_s = uptime_.seconds();
  {
    std::lock_guard lock(mutex_);
    report.aggregate_gflops =
        report.uptime_s > 0.0
            ? static_cast<double>(flops_served_) / report.uptime_s / 1e9
            : 0.0;
  }
  const auto latency = snapshot.histograms.find("serve.latency_s");
  if (latency != snapshot.histograms.end()) {
    report.latency_s = latency->second;
  }
  const auto batch = snapshot.histograms.find("serve.batch.size");
  if (batch != snapshot.histograms.end()) {
    report.batch_size = batch->second;
  }
  report.metrics = std::move(snapshot);
  return report;
}

}  // namespace pw::serve
