#include "pw/serve/trace.hpp"

#include <memory>
#include <string>
#include <utility>

#include "pw/grid/init.hpp"
#include "pw/util/rng.hpp"

namespace pw::serve {

namespace {

std::shared_ptr<const grid::WindState> make_state(const grid::GridDims& dims,
                                                  std::uint64_t seed) {
  auto state = std::make_shared<grid::WindState>(dims);
  grid::init_random(*state, seed);
  return state;
}

api::SolverOptions options_for(api::Backend backend, api::Kernel kernel,
                               const TraceSpec& spec) {
  api::SolverOptions options;
  if (backend == api::Backend::kHostOverlap) {
    api::HostOptions host;
    host.x_chunks = spec.x_chunks;
    options.backend = host;
  } else {
    options.backend = backend;
  }
  options.kernel_spec = kernel;
  options.kernel.chunk_y = spec.chunk_y;
  return options;
}

}  // namespace

std::vector<api::SolveRequest> make_trace(const TraceSpec& spec) {
  std::vector<api::SolveRequest> trace;
  if (spec.requests == 0 || spec.shapes.empty() || spec.backends.empty()) {
    return trace;
  }
  trace.reserve(spec.requests);
  util::Rng rng(spec.seed);

  // Per-shape shared payloads: one coefficient set (requests of a shape
  // always share it) and `hot_payloads` wind states for the repeat stream.
  struct ShapePool {
    std::shared_ptr<const advect::PwCoefficients> coefficients;
    std::vector<std::shared_ptr<const grid::WindState>> hot;
  };
  std::vector<ShapePool> pools(spec.shapes.size());
  for (std::size_t s = 0; s < spec.shapes.size(); ++s) {
    const grid::GridDims& dims = spec.shapes[s];
    pools[s].coefficients = std::make_shared<const advect::PwCoefficients>(
        advect::PwCoefficients::from_geometry(
            grid::Geometry::uniform(dims, 100.0, 100.0, 50.0)));
    const std::size_t hot = spec.hot_payloads == 0 ? 1 : spec.hot_payloads;
    for (std::size_t p = 0; p < hot; ++p) {
      pools[s].hot.push_back(make_state(dims, spec.seed * 7919 + s * 97 + p));
    }
  }

  const std::vector<api::Kernel> kernels =
      spec.kernels.empty() ? std::vector<api::Kernel>{api::Kernel::kAdvectPw}
                           : spec.kernels;
  for (std::size_t i = 0; i < spec.requests; ++i) {
    const std::size_t s = i % spec.shapes.size();
    ShapePool& pool = pools[s];
    const api::Kernel kernel = kernels[rng.next_below(kernels.size())];
    api::SolveRequest request;
    // Only advection carries the coefficients payload; stencil kernels'
    // knobs live in the KernelSpec, and hot payloads are shared across
    // kernels — same bytes, different fingerprints via the plan key.
    if (kernel == api::Kernel::kAdvectPw) {
      request.coefficients = pool.coefficients;
    }
    const std::string kernel_tag = api::to_string(kernel);
    if (rng.next_double() < spec.repeat_fraction) {
      // Hot request: a payload the service has likely already served.
      request.state = pool.hot[rng.next_below(pool.hot.size())];
      request.tag = kernel_tag + "/hot/" + std::to_string(s);
    } else {
      request.state = make_state(spec.shapes[s], spec.seed + 104729 + i);
      request.tag = kernel_tag + "/cold/" + std::to_string(i);
    }
    const api::Backend backend =
        spec.backends[rng.next_below(spec.backends.size())];
    request.options = options_for(backend, kernel, spec);
    request.timeout = spec.timeout;
    trace.push_back(std::move(request));
  }
  return trace;
}

}  // namespace pw::serve
