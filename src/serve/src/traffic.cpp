#include "pw/serve/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "pw/grid/init.hpp"
#include "pw/util/rng.hpp"

namespace pw::serve {

namespace {

/// One catalogue scenario: a fully-formed request template whose payload
/// pointers are shared by every request drawn at its rank, so Zipf
/// popularity translates directly into shared fingerprints (cache hits).
struct Scenario {
  std::shared_ptr<const grid::WindState> state;
  std::shared_ptr<const advect::PwCoefficients> coefficients;
  api::SolverOptions options;
  std::string tag;
};

api::SolverOptions options_for(api::Backend backend, api::Kernel kernel,
                               const TraceSpec& spec) {
  api::SolverOptions options;
  if (backend == api::Backend::kHostOverlap) {
    api::HostOptions host;
    host.x_chunks = spec.x_chunks;
    options.backend = host;
  } else {
    options.backend = backend;
  }
  options.kernel_spec = kernel;
  options.kernel.chunk_y = spec.chunk_y;
  return options;
}

double rate_at(const TrafficSpec& spec, double t) {
  if (!spec.diurnal) {
    return spec.arrival_rate_hz;
  }
  constexpr double kTau = 6.283185307179586;
  const double period = std::max(1e-6, spec.diurnal_period_s);
  const double modulated =
      spec.arrival_rate_hz *
      (1.0 + spec.diurnal_amplitude * std::sin(kTau * t / period));
  return std::max(modulated, 0.05 * spec.arrival_rate_hz);
}

}  // namespace

std::vector<TenantMix> default_tenant_mix(std::size_t tenants) {
  std::vector<TenantMix> mix;
  mix.reserve(std::max<std::size_t>(1, tenants));
  if (tenants == 0) {
    mix.push_back(TenantMix{});
    return mix;
  }
  for (std::size_t i = 0; i < tenants; ++i) {
    TenantMix tenant;
    tenant.name = "tenant-" + std::to_string(i);
    tenant.weight = 1.0;
    tenant.priority = api::kAllPriorities[i % api::kAllPriorities.size()];
    mix.push_back(std::move(tenant));
  }
  return mix;
}

std::vector<TimedRequest> make_traffic(const TrafficSpec& spec) {
  std::vector<TimedRequest> traffic;
  const TraceSpec& trace = spec.trace;
  if (spec.requests == 0 || trace.shapes.empty() || trace.backends.empty()) {
    return traffic;
  }
  traffic.reserve(spec.requests);
  util::Rng rng(trace.seed);

  const std::vector<api::Kernel> kernels =
      trace.kernels.empty() ? std::vector<api::Kernel>{api::Kernel::kAdvectPw}
                            : trace.kernels;

  // Per-shape coefficients, shared by every scenario of that shape (the
  // trace convention: requests of a shape always share one set).
  std::vector<std::shared_ptr<const advect::PwCoefficients>> coefficients;
  coefficients.reserve(trace.shapes.size());
  for (const grid::GridDims& dims : trace.shapes) {
    coefficients.push_back(std::make_shared<const advect::PwCoefficients>(
        advect::PwCoefficients::from_geometry(
            grid::Geometry::uniform(dims, 100.0, 100.0, 50.0))));
  }

  // The scenario catalogue: every distinct payload the storm can carry.
  const std::size_t catalogue = std::max<std::size_t>(1, spec.catalogue);
  std::vector<Scenario> scenarios;
  scenarios.reserve(catalogue);
  for (std::size_t k = 0; k < catalogue; ++k) {
    const std::size_t s = k % trace.shapes.size();
    Scenario scenario;
    auto state = std::make_shared<grid::WindState>(trace.shapes[s]);
    grid::init_random(*state, trace.seed * 6151 + k * 389 + 17);
    scenario.state = std::move(state);
    const api::Kernel kernel = kernels[rng.next_below(kernels.size())];
    if (kernel == api::Kernel::kAdvectPw) {
      scenario.coefficients = coefficients[s];
    }
    const api::Backend backend =
        trace.backends[rng.next_below(trace.backends.size())];
    scenario.options = options_for(backend, kernel, trace);
    scenario.tag = std::string(api::to_string(kernel)) + "/scenario/" +
                   std::to_string(k);
    scenarios.push_back(std::move(scenario));
  }

  // Zipf(zipf_s) popularity as an inverse-CDF table over scenario ranks.
  std::vector<double> cdf(catalogue);
  double total = 0.0;
  const double s_param = std::max(0.0, spec.zipf_s);
  for (std::size_t k = 0; k < catalogue; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s_param);
    cdf[k] = total;
  }
  for (double& value : cdf) {
    value /= total;
  }

  // Tenant mix as a weight-proportional CDF.
  const std::vector<TenantMix> tenants =
      spec.tenants.empty() ? default_tenant_mix(0) : spec.tenants;
  std::vector<double> tenant_cdf(tenants.size());
  double tenant_total = 0.0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    tenant_total += std::max(1e-9, tenants[i].weight);
    tenant_cdf[i] = tenant_total;
  }
  for (double& value : tenant_cdf) {
    value /= tenant_total;
  }

  // Open-loop arrivals: exponential interarrival gaps at the (possibly
  // diurnally modulated) instantaneous rate.
  double now_s = 0.0;
  const double rate_floor = 1e-6;
  for (std::size_t i = 0; i < spec.requests; ++i) {
    const double rate = std::max(rate_floor, rate_at(spec, now_s));
    const double u = std::min(1.0 - 1e-12, rng.next_double());
    now_s += -std::log(1.0 - u) / rate;

    const auto rank_it =
        std::lower_bound(cdf.begin(), cdf.end(), rng.next_double());
    const std::size_t rank = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(rank_it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(catalogue) - 1));
    const Scenario& scenario = scenarios[rank];

    const auto tenant_it = std::lower_bound(
        tenant_cdf.begin(), tenant_cdf.end(), rng.next_double());
    const std::size_t tenant_index = static_cast<std::size_t>(std::min<
        std::ptrdiff_t>(tenant_it - tenant_cdf.begin(),
                        static_cast<std::ptrdiff_t>(tenants.size()) - 1));
    const TenantMix& tenant = tenants[tenant_index];

    TimedRequest timed;
    timed.arrival_s = now_s;
    timed.request.state = scenario.state;
    timed.request.coefficients = scenario.coefficients;
    timed.request.options = scenario.options;
    timed.request.tag = scenario.tag;
    timed.request.tenant = tenant.name;
    timed.request.priority = tenant.priority;
    timed.request.timeout = trace.timeout;
    traffic.push_back(std::move(timed));
  }
  return traffic;
}

std::string to_string(const TrafficSpec& spec) {
  std::ostringstream os;
  os << "requests=" << spec.requests;
  os << ",rate=" << spec.arrival_rate_hz;
  os << ",zipf=" << spec.zipf_s;
  os << ",catalogue=" << spec.catalogue;
  os << ",tenants=" << spec.tenants.size();
  os << ",diurnal=" << (spec.diurnal ? 1 : 0);
  os << ",amplitude=" << spec.diurnal_amplitude;
  os << ",period=" << spec.diurnal_period_s;
  os << ",seed=" << spec.trace.seed;
  os << ",timeout_ms="
     << std::chrono::duration_cast<std::chrono::milliseconds>(
            spec.trace.timeout)
            .count();
  return os.str();
}

std::optional<TrafficSpec> parse_traffic(std::string_view text) {
  TrafficSpec spec;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = std::min(text.find(',', start), text.size());
    const std::string_view pair = text.substr(start, comma - start);
    start = comma + 1;
    if (pair.empty()) {
      if (comma == text.size()) {
        break;
      }
      continue;
    }
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return std::nullopt;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    try {
      if (key == "requests") {
        spec.requests = std::stoull(value);
      } else if (key == "rate") {
        spec.arrival_rate_hz = std::stod(value);
      } else if (key == "zipf") {
        spec.zipf_s = std::stod(value);
      } else if (key == "catalogue") {
        spec.catalogue = std::stoull(value);
      } else if (key == "tenants") {
        spec.tenants = default_tenant_mix(std::stoull(value));
      } else if (key == "diurnal") {
        spec.diurnal = std::stoull(value) != 0;
      } else if (key == "amplitude") {
        spec.diurnal_amplitude = std::stod(value);
      } else if (key == "period") {
        spec.diurnal_period_s = std::stod(value);
      } else if (key == "seed") {
        spec.trace.seed = std::stoull(value);
      } else if (key == "timeout_ms") {
        spec.trace.timeout = std::chrono::milliseconds(std::stoll(value));
      } else {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (comma == text.size()) {
      break;
    }
  }
  return spec;
}

}  // namespace pw::serve
