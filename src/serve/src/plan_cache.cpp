#include "pw/serve/plan_cache.hpp"

#include <bit>
#include <cstdio>
#include <span>

namespace pw::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

// Field payloads are megabytes; folding them as 64-bit words across four
// independent lanes (instead of one serial byte-at-a-time FNV chain, whose
// multiply latency caps throughput) keeps admission-time fingerprinting
// out of the serving hot path. Deterministic, but not FNV-1a proper — the
// fingerprints never leave the process.
void hash_doubles(std::uint64_t& h, std::span<const double> values) {
  std::uint64_t lanes[4] = {h, h ^ 0x9e3779b97f4a7c15ULL,
                            h ^ 0xc2b2ae3d27d4eb4fULL,
                            h ^ 0x165667b19e3779f9ULL};
  std::size_t i = 0;
  for (; i + 4 <= values.size(); i += 4) {
    for (std::size_t lane = 0; lane < 4; ++lane) {
      lanes[lane] ^= std::bit_cast<std::uint64_t>(values[i + lane]);
      lanes[lane] *= kFnvPrime;
    }
  }
  for (; i < values.size(); ++i) {
    lanes[i % 4] ^= std::bit_cast<std::uint64_t>(values[i]);
    lanes[i % 4] *= kFnvPrime;
  }
  h = lanes[0];
  for (std::size_t lane = 1; lane < 4; ++lane) {
    h ^= lanes[lane];
    h *= kFnvPrime;
  }
}

}  // namespace

std::string plan_key(const grid::GridDims& dims,
                     const api::SolverOptions& options) {
  std::string key;
  key.reserve(96);
  key += std::to_string(dims.nx) + "x" + std::to_string(dims.ny) + "x" +
         std::to_string(dims.nz);
  key += "/";
  key += api::to_string(options.backend);
  if (const auto* cpu = options.backend.get_if<api::CpuBaselineOptions>()) {
    key += ":threads=" + std::to_string(cpu->threads);
  } else if (const auto* multi =
                 options.backend.get_if<api::MultiKernelOptions>()) {
    key += ":kernels=" + std::to_string(multi->kernels);
  } else if (const auto* vec =
                 options.backend.get_if<api::VectorizedOptions>()) {
    key += ":lanes=" + std::to_string(vec->lanes);
  } else if (const auto* host = options.backend.get_if<api::HostOptions>()) {
    key += ":x_chunks=" + std::to_string(host->x_chunks);
    key += host->overlapped ? ",overlapped" : ",sequential";
  }
  // Kernel identity + knobs: two requests that differ only in kernel (or a
  // kernel knob that changes the answer, like poisson iterations) must
  // never share a plan or — since fingerprints hash this key — a result.
  key += "/kernel=";
  key += api::to_string(options.kernel_spec);
  if (const auto* diff =
          options.kernel_spec.get_if<api::DiffusionOptions>()) {
    char knobs[128];
    std::snprintf(knobs, sizeof(knobs),
                  ":kappa=%.17g,dx=%.17g,dy=%.17g,dz=%.17g", diff->kappa,
                  diff->dx, diff->dy, diff->dz);
    key += knobs;
  } else if (const auto* poisson =
                 options.kernel_spec.get_if<api::PoissonOptions>()) {
    char knobs[160];
    std::snprintf(knobs, sizeof(knobs),
                  ":iterations=%zu,dx=%.17g,dy=%.17g,dz=%.17g",
                  poisson->iterations, poisson->dx, poisson->dy, poisson->dz);
    key += knobs;
  }
  key += "/chunk_y=" + std::to_string(options.kernel.chunk_y);
  key += ",depth=" + std::to_string(options.kernel.stream_depth);
  return key;
}

std::uint64_t payload_hash(const grid::WindState& state,
                           const advect::PwCoefficients* coefficients) {
  std::uint64_t h = kFnvOffset;
  hash_doubles(h, state.u.raw());
  hash_doubles(h, state.v.raw());
  hash_doubles(h, state.w.raw());
  if (coefficients != nullptr) {
    hash_doubles(h, std::span<const double>(&coefficients->tcx, 1));
    hash_doubles(h, std::span<const double>(&coefficients->tcy, 1));
    hash_doubles(h, coefficients->tzc1);
    hash_doubles(h, coefficients->tzc2);
    hash_doubles(h, coefficients->tzd1);
    hash_doubles(h, coefficients->tzd2);
  }
  return h;
}

std::uint64_t payload_hash(const grid::WindState& state,
                           const advect::PwCoefficients& coefficients) {
  return payload_hash(state, &coefficients);
}

namespace {

std::uint64_t combine_fingerprint(const api::SolveRequest& request,
                                  std::uint64_t payload) {
  std::uint64_t h = kFnvOffset;
  const std::string key =
      plan_key(request.state->u.dims(), request.options);
  hash_bytes(h, key.data(), key.size());
  hash_bytes(h, &payload, sizeof(payload));
  return h;
}

}  // namespace

std::uint64_t request_fingerprint(const api::SolveRequest& request) {
  if (!request.state) {
    return kFnvOffset;
  }
  return combine_fingerprint(
      request, payload_hash(*request.state, request.coefficients.get()));
}

std::uint64_t FingerprintCache::fingerprint(const api::SolveRequest& request) {
  if (!request.state) {
    return kFnvOffset;
  }
  const grid::WindState* key = request.state.get();
  {
    std::lock_guard lock(mutex_);
    const auto it = hashes_.find(key);
    // Reuse only while the cached weak_ptrs still lock to this exact
    // payload pair — a live lock proves the addresses were never recycled.
    if (it != hashes_.end() &&
        it->second.state.lock() == request.state &&
        it->second.coefficients.lock() == request.coefficients) {
      return combine_fingerprint(request, it->second.hash);
    }
  }
  const std::uint64_t payload =
      payload_hash(*request.state, request.coefficients.get());
  {
    std::lock_guard lock(mutex_);
    if (hashes_.size() >= capacity_) {  // drop dead owners before growing
      for (auto it = hashes_.begin(); it != hashes_.end();) {
        it = it->second.state.expired() ? hashes_.erase(it) : ++it;
      }
    }
    // Live payloads alone can fill the memo; evict outright so the cap is
    // hard. (std::map iterates in address order — effectively arbitrary —
    // and a victim's next request merely re-hashes its payload.)
    while (hashes_.size() >= capacity_) {
      hashes_.erase(hashes_.begin());
    }
    hashes_[key] = CachedHash{request.state, request.coefficients, payload};
  }
  return combine_fingerprint(request, payload);
}

std::size_t FingerprintCache::size() const {
  std::lock_guard lock(mutex_);
  return hashes_.size();
}

std::shared_ptr<const Plan> PlanCache::lookup(
    const grid::GridDims& dims, const api::SolverOptions& options) {
  std::string key = plan_key(dims, options);
  {
    std::lock_guard lock(mutex_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: the lint battery is microseconds, but there is
  // no reason to serialise admission of *different* shapes behind it. A
  // racing duplicate build is benign — both produce the same plan and the
  // first insert wins.
  auto plan = std::make_shared<Plan>();
  plan->key = key;
  plan->lint = api::Solver(options).validate(dims);
  plan->admitted = lint::admits(plan->lint, policy_);
  if (const lint::Diagnostic* d = lint::first_rejection(plan->lint, policy_)) {
    plan->rejection = d->check + ": " + d->message;
  }
  std::lock_guard lock(mutex_);
  ++misses_;
  const auto [it, inserted] = plans_.emplace(std::move(key), std::move(plan));
  return it->second;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return plans_.size();
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

}  // namespace pw::serve
