#include "pw/serve/tiered_cache.hpp"

#include <algorithm>
#include <utility>

namespace pw::serve {

TieredResultCache::TieredResultCache(TieredCacheConfig config,
                                     obs::MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  config_.hot_entries = std::max<std::size_t>(1, config_.hot_entries);
  config_.max_bytes = std::max<std::size_t>(1, config_.max_bytes);
  stats_.byte_cap = config_.max_bytes;
}

std::size_t TieredResultCache::result_bytes(const api::SolveResult& result) {
  // The dominant payload is the three source-term fields; the snapshot and
  // bookkeeping ride in a fixed estimate so empty results still cost > 0.
  std::size_t bytes = 512;
  if (result.terms) {
    bytes += result.terms->su.raw().size() * sizeof(double);
    bytes += result.terms->sv.raw().size() * sizeof(double);
    bytes += result.terms->sw.raw().size() * sizeof(double);
  }
  return bytes;
}

std::shared_ptr<const api::SolveResult> TieredResultCache::get(
    std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const auto it = slots_.find(key);
  if (it == slots_.end()) {
    ++stats_.misses;
    if (metrics_ != nullptr) {
      metrics_->counter_add("serve.cache.misses");
    }
    return nullptr;
  }
  Slot& slot = it->second;
  if (slot.tier == Tier::kHot) {
    ++stats_.hot_hits;
    hot_.splice(hot_.begin(), hot_, slot.position);
    if (metrics_ != nullptr) {
      metrics_->counter_add("serve.cache.hot.hits");
    }
  } else {
    ++stats_.warm_hits;
    ++stats_.promotions;
    warm_.erase(slot.position);
    hot_.push_front(key);
    slot.tier = Tier::kHot;
    slot.position = hot_.begin();
    enforce_caps_locked();
    if (metrics_ != nullptr) {
      metrics_->counter_add("serve.cache.warm.hits");
      metrics_->counter_add("serve.cache.promotions");
    }
  }
  publish_locked();
  return slot.value;
}

bool TieredResultCache::put(std::uint64_t key,
                            std::shared_ptr<const api::SolveResult> value) {
  if (value == nullptr) {
    return false;
  }
  const std::size_t bytes = result_bytes(*value);
  std::lock_guard lock(mutex_);
  if (slots_.count(key) != 0) {
    return true;  // racing insert of the same fingerprint: first wins
  }
  if (bytes > config_.max_bytes) {
    ++stats_.rejected_oversize;
    if (metrics_ != nullptr) {
      metrics_->counter_add("serve.cache.rejected_oversize");
    }
    return false;
  }
  hot_.push_front(key);
  Slot slot;
  slot.value = std::move(value);
  slot.bytes = bytes;
  slot.tier = Tier::kHot;
  slot.position = hot_.begin();
  slots_.emplace(key, std::move(slot));
  bytes_ += bytes;
  ++stats_.insertions;
  if (metrics_ != nullptr) {
    metrics_->counter_add("serve.cache.insertions");
  }
  enforce_caps_locked();
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_);
  publish_locked();
  return true;
}

void TieredResultCache::enforce_caps_locked() {
  // Hot overflow demotes recency-last entries into warm...
  while (hot_.size() > config_.hot_entries) {
    const std::uint64_t key = hot_.back();
    hot_.pop_back();
    Slot& slot = slots_.at(key);
    warm_.push_front(key);
    slot.tier = Tier::kWarm;
    slot.position = warm_.begin();
    ++stats_.demotions;
    if (metrics_ != nullptr) {
      metrics_->counter_add("serve.cache.demotions");
    }
  }
  // ...and warm absorbs the pressure: entry cap first, then the byte cap.
  while (warm_.size() > config_.warm_entries ||
         (bytes_ > config_.max_bytes && !warm_.empty())) {
    evict_warm_lru_locked();
  }
  // Degenerate geometry (hot_entries alone exceeding the byte budget):
  // shrink hot directly so the byte cap stays a hard invariant.
  while (bytes_ > config_.max_bytes && !hot_.empty()) {
    const std::uint64_t key = hot_.back();
    hot_.pop_back();
    const auto it = slots_.find(key);
    bytes_ -= it->second.bytes;
    slots_.erase(it);
    ++stats_.evictions;
    if (metrics_ != nullptr) {
      metrics_->counter_add("serve.cache.evictions");
    }
  }
}

void TieredResultCache::evict_warm_lru_locked() {
  const std::uint64_t key = warm_.back();
  warm_.pop_back();
  const auto it = slots_.find(key);
  bytes_ -= it->second.bytes;
  slots_.erase(it);
  ++stats_.evictions;
  if (metrics_ != nullptr) {
    metrics_->counter_add("serve.cache.evictions");
  }
}

void TieredResultCache::publish_locked() {
  if (metrics_ == nullptr) {
    return;
  }
  metrics_->gauge_set("serve.cache.bytes", static_cast<double>(bytes_));
  metrics_->gauge_set("serve.cache.peak_bytes",
                      static_cast<double>(stats_.peak_bytes));
  metrics_->gauge_set("serve.cache.entries",
                      static_cast<double>(slots_.size()));
  metrics_->gauge_set("serve.cache.hot.entries",
                      static_cast<double>(hot_.size()));
  metrics_->gauge_set("serve.cache.warm.entries",
                      static_cast<double>(warm_.size()));
}

TieredCacheStats TieredResultCache::stats() const {
  std::lock_guard lock(mutex_);
  TieredCacheStats stats = stats_;
  stats.hot_count = hot_.size();
  stats.warm_count = warm_.size();
  stats.bytes = bytes_;
  stats.byte_cap = config_.max_bytes;
  return stats;
}

}  // namespace pw::serve
