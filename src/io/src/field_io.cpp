#include "pw/io/field_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace pw::io {

namespace {

constexpr char kMagic[4] = {'P', 'W', 'F', '1'};
constexpr std::uint64_t kMaxDim = 1ull << 40;

struct Header {
  char magic[4];
  std::uint64_t nx, ny, nz, halo;
};

void write_header(const grid::FieldD& field, std::ostream& os) {
  Header h;
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.nx = field.nx();
  h.ny = field.ny();
  h.nz = field.nz();
  h.halo = field.halo();
  os.write(reinterpret_cast<const char*>(&h), sizeof h);
}

Header read_header(std::istream& is) {
  Header h;
  is.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!is || std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("field_io: bad magic or truncated header");
  }
  if (h.nx == 0 || h.ny == 0 || h.nz == 0 || h.nx > kMaxDim ||
      h.ny > kMaxDim || h.nz > kMaxDim || h.halo > 16) {
    throw std::runtime_error("field_io: implausible header");
  }
  return h;
}

}  // namespace

void write_field(const grid::FieldD& field, std::ostream& os) {
  write_header(field, os);
  const auto raw = field.raw();
  os.write(reinterpret_cast<const char*>(raw.data()),
           static_cast<std::streamsize>(raw.size() * sizeof(double)));
  if (!os) {
    throw std::runtime_error("field_io: write failed");
  }
}

grid::FieldD read_field(std::istream& is) {
  const Header h = read_header(is);
  grid::FieldD field(
      {static_cast<std::size_t>(h.nx), static_cast<std::size_t>(h.ny),
       static_cast<std::size_t>(h.nz)},
      static_cast<std::size_t>(h.halo));
  auto raw = field.raw();
  is.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size() * sizeof(double)));
  if (!is || is.gcount() !=
                 static_cast<std::streamsize>(raw.size() * sizeof(double))) {
    throw std::runtime_error("field_io: truncated data");
  }
  return field;
}

void save_field(const grid::FieldD& field, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("field_io: cannot open " + path);
  }
  write_field(field, os);
}

grid::FieldD load_field(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("field_io: cannot open " + path);
  }
  return read_field(is);
}

void write_state(const grid::WindState& state, std::ostream& os) {
  write_field(state.u, os);
  write_field(state.v, os);
  write_field(state.w, os);
}

grid::WindState read_state(std::istream& is) {
  grid::FieldD u = read_field(is);
  grid::FieldD v = read_field(is);
  grid::FieldD w = read_field(is);
  if (!u.same_shape(v) || !u.same_shape(w)) {
    throw std::runtime_error("field_io: state fields have mixed shapes");
  }
  grid::WindState state(u.dims(), u.halo());
  state.u = std::move(u);
  state.v = std::move(v);
  state.w = std::move(w);
  return state;
}

void save_state(const grid::WindState& state, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("field_io: cannot open " + path);
  }
  write_state(state, os);
}

grid::WindState load_state(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("field_io: cannot open " + path);
  }
  return read_state(is);
}

}  // namespace pw::io
