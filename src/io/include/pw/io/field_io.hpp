#pragma once

#include <iosfwd>
#include <string>

#include "pw/grid/field3d.hpp"
#include "pw/grid/init.hpp"

namespace pw::io {

/// Simple versioned binary snapshot format for fields ("PWF1"): header
/// (magic, dims, halo) followed by the raw padded data. Used for
/// checkpointing model runs and for golden-file regression tests.
/// Little-endian host order (this is a single-machine format, not an
/// archival one).

/// Serialises a field (including halos) to a stream.
void write_field(const grid::FieldD& field, std::ostream& os);

/// Deserialises a field; throws std::runtime_error on bad magic,
/// truncation, or absurd dimensions.
grid::FieldD read_field(std::istream& is);

/// File wrappers.
void save_field(const grid::FieldD& field, const std::string& path);
grid::FieldD load_field(const std::string& path);

/// Wind-state snapshots: three fields in one stream (u, v, w).
void write_state(const grid::WindState& state, std::ostream& os);
grid::WindState read_state(std::istream& is);
void save_state(const grid::WindState& state, const std::string& path);
grid::WindState load_state(const std::string& path);

}  // namespace pw::io
