#include "pw/exp/report.hpp"

#include <sstream>

#include "pw/exp/experiments.hpp"

namespace pw::exp {

namespace {

void table_as_markdown(const util::Table& table, std::ostream& os) {
  os << "### " << table.caption() << "\n\n";
  // Header
  const std::size_t columns = table.columns();
  if (columns == 0) {
    return;
  }
  // Recover header/rows through CSV (Table keeps them private); cheap and
  // loss-free for our cells.
  std::ostringstream csv;
  table.write_csv(csv);
  std::istringstream lines(csv.str());
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    os << "| ";
    std::string cell;
    std::istringstream cells(line);
    bool first_cell = true;
    while (std::getline(cells, cell, ',')) {
      if (!first_cell) {
        os << " | ";
      }
      os << cell;
      first_cell = false;
    }
    os << " |\n";
    if (first) {
      os << "|";
      for (std::size_t c = 0; c < columns; ++c) {
        os << "---|";
      }
      os << "\n";
      first = false;
    }
  }
  os << "\n";
}

}  // namespace

void write_markdown_report(const Devices& devices, std::ostream& os) {
  os << "# PW advection on FPGAs — regenerated evaluation artefacts\n\n"
     << "Produced by the pwadvection simulation stack; see EXPERIMENTS.md "
        "for paper-vs-measured commentary and the calibration table.\n\n";
  table_as_markdown(table1(devices), os);
  table_as_markdown(table2(devices), os);
  table_as_markdown(fig5(devices), os);
  table_as_markdown(fig6(devices), os);
  table_as_markdown(fig7(devices), os);
  table_as_markdown(fig8(devices), os);
}

std::string markdown_report(const Devices& devices) {
  std::ostringstream os;
  write_markdown_report(devices, os);
  return os.str();
}

}  // namespace pw::exp
