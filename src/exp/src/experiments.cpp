#include "pw/exp/experiments.hpp"

#include <algorithm>
#include <cmath>

#include "pw/advect/flops.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/xfer/schedules.hpp"

namespace pw::exp {

namespace {

constexpr std::size_t kChunkY = 64;  // default Y-chunk in every experiment

fpga::KernelOnlyInput kernel_input(const fpga::FpgaDeviceProfile& device,
                                   const grid::GridDims& dims,
                                   std::size_t kernels,
                                   const fpga::MemoryTech& memory,
                                   double memory_share) {
  fpga::KernelOnlyInput input;
  input.dims = dims;
  input.config.chunk_y = kChunkY;
  input.kernels = kernels;
  input.clock_hz = device.clock_hz(kernels);
  input.memory = memory;
  input.memory_share = memory_share;
  input.launch_overhead_s = 0.0;  // accounted in the schedule
  return input;
}

power::ActiveMemory to_active(fpga::MemoryKind kind) {
  return kind == fpga::MemoryKind::kHbm2 ? power::ActiveMemory::kHbm2
                                         : power::ActiveMemory::kDdr;
}

double run_flops(const grid::GridDims& dims) {
  return static_cast<double>(advect::total_flops(dims));
}

void finalise(DeviceRun& run, const power::PowerProfile& profile) {
  const power::Activity activity{run.compute_utilisation,
                                 run.transfer_utilisation, run.memory};
  run.power_w = power::average_power_w(profile, activity);
  run.gflops_per_watt = power::power_efficiency(run.gflops, run.power_w);
}

}  // namespace

std::vector<std::size_t> figure_grid_sizes() { return {16, 67, 268, 536}; }

DeviceRun run_fpga_overall(const fpga::FpgaDeviceProfile& device,
                           const power::PowerProfile& power_profile,
                           const grid::GridDims& dims, bool overlapped,
                           std::size_t x_chunks) {
  DeviceRun run;
  run.device = device.name;
  run.cells = dims.cells();

  const std::size_t footprint = fpga::device_footprint_bytes(dims);
  const fpga::MemoryTech& memory = device.memory_for(footprint);
  run.memory = to_active(memory.kind);
  run.note = memory.name;

  const std::size_t kernels = device.paper_kernel_count;
  const auto bytes = fpga::transfer_bytes(dims);

  xfer::TransferModel tm;
  tm.full_duplex = device.pcie.full_duplex;
  if (overlapped) {
    tm.h2d_gbps = device.pcie.overlapped_gbps();
    tm.d2h_gbps = device.pcie.overlapped_gbps();
  } else {
    tm.h2d_gbps = device.pcie.single_stream_gbps();
    tm.d2h_gbps = device.pcie.single_stream_gbps();
  }

  // When overlapped transfers land in the memory the kernels read (DDR —
  // HBM2 has headroom to spare), the PCIe DMA steals a share of the
  // sustainable bandwidth. Solve the coupled rates by damped fixed point.
  double memory_share = 1.0;
  xfer::RunResult scheduled;
  for (int iteration = 0; iteration < 24; ++iteration) {
    const auto kernel_result = fpga::model_kernel_only(
        kernel_input(device, dims, kernels, memory, memory_share));

    xfer::RunShape shape;
    shape.bytes_in = bytes.host_to_device;
    shape.bytes_out = bytes.device_to_host;
    shape.compute_seconds = kernel_result.seconds;
    shape.chunks = overlapped ? x_chunks : 1;
    shape.fixed_overhead_s = device.launch_overhead_s;
    scheduled = overlapped ? xfer::schedule_overlapped(shape, tm)
                           : xfer::schedule_sequential(shape, tm);

    const bool contended =
        overlapped && memory.kind == fpga::MemoryKind::kDdr;
    if (!contended) {
      break;
    }
    const double pcie_bps =
        static_cast<double>(bytes.total()) / scheduled.seconds;
    const double next_share = std::clamp(
        1.0 - pcie_bps / (memory.system_sustained_gbps * 1e9), 0.15, 1.0);
    if (std::fabs(next_share - memory_share) < 1e-3) {
      memory_share = next_share;
      break;
    }
    memory_share = 0.5 * memory_share + 0.5 * next_share;
  }

  run.seconds = scheduled.seconds;
  run.gflops = run_flops(dims) / run.seconds / 1e9;
  run.memory_share = memory_share;
  run.compute_utilisation = scheduled.timeline.utilisation(xfer::Engine::kKernel);
  run.transfer_utilisation =
      std::max(scheduled.timeline.utilisation(xfer::Engine::kHostToDevice),
               scheduled.timeline.utilisation(xfer::Engine::kDeviceToHost));
  finalise(run, power_profile);
  return run;
}

DeviceRun run_gpu_overall(const gpu::GpuProfile& gpu,
                          const power::PowerProfile& power_profile,
                          const grid::GridDims& dims, bool overlapped,
                          std::size_t x_chunks) {
  DeviceRun run;
  run.device = gpu.name;
  run.cells = dims.cells();
  run.memory = power::ActiveMemory::kHbm2;

  if (!gpu::fits_on_gpu(gpu, dims)) {
    // Paper §IV: no 536M result — 25.8GB exceeds the V100's 16GB.
    run.available = false;
    run.note = "data set exceeds 16GB device memory";
    return run;
  }

  const auto bytes = fpga::transfer_bytes(dims);
  xfer::TransferModel tm;
  tm.full_duplex = gpu.pcie.full_duplex;
  tm.h2d_gbps = overlapped ? gpu.pcie.overlapped_gbps()
                           : gpu.pcie.single_stream_gbps();
  tm.d2h_gbps = tm.h2d_gbps;
  tm.dma_setup_s = gpu.dma_setup_s;
  tm.kernel_dispatch_s = gpu.kernel_dispatch_s;

  xfer::RunShape shape;
  shape.bytes_in = bytes.host_to_device;
  shape.bytes_out = bytes.device_to_host;
  shape.compute_seconds = gpu::gpu_compute_seconds(gpu, dims);
  shape.chunks = overlapped ? x_chunks : 1;  // CUDA streams analogue
  shape.fixed_overhead_s = gpu.launch_overhead_s;

  const auto scheduled = overlapped ? xfer::schedule_overlapped(shape, tm)
                                    : xfer::schedule_sequential(shape, tm);
  run.seconds = scheduled.seconds;
  run.gflops = run_flops(dims) / run.seconds / 1e9;
  run.compute_utilisation = scheduled.timeline.utilisation(xfer::Engine::kKernel);
  run.transfer_utilisation =
      std::max(scheduled.timeline.utilisation(xfer::Engine::kHostToDevice),
               scheduled.timeline.utilisation(xfer::Engine::kDeviceToHost));
  finalise(run, power_profile);
  return run;
}

DeviceRun run_cpu_overall(const CpuProfile& cpu,
                          const power::PowerProfile& power_profile,
                          const grid::GridDims& dims) {
  DeviceRun run;
  run.device = cpu.name;
  run.cells = dims.cells();
  run.memory = power::ActiveMemory::kDdr;
  run.gflops = cpu.gflops_all_cores;
  run.seconds = run_flops(dims) / (run.gflops * 1e9);
  run.compute_utilisation = 1.0;
  run.transfer_utilisation = 0.0;
  run.memory = power::ActiveMemory::kNone;
  finalise(run, power_profile);
  return run;
}

util::Table table1(const Devices& devices) {
  const grid::GridDims dims = grid::paper_grid(16);

  auto fpga_single = [&](const fpga::FpgaDeviceProfile& device) {
    fpga::KernelOnlyInput input = kernel_input(
        device, dims, 1, device.memories.front(), 1.0);
    input.launch_overhead_s = device.launch_overhead_s;
    return fpga::model_kernel_only(input);
  };
  const auto alveo = fpga_single(devices.alveo);
  const auto stratix = fpga_single(devices.stratix);

  const double cpu1 = devices.cpu.gflops_single_core;
  const double cpu24 = devices.cpu.gflops_all_cores;
  const double gpu = devices.v100.kernel_gflops;

  auto pct = [](double value) {
    return util::format_double(value * 100.0, 0) + "%";
  };

  util::Table t(
      "Table I: kernel-only performance, 16M grid points "
      "(single FPGA kernel; no PCIe transfer)");
  t.header({"Description", "Performance (GFLOPS)", "% theoretical",
            "% CPU performance"});
  t.row({"1 core of Xeon CPU", util::format_double(cpu1, 2), "-", "-"});
  t.row({"24 core Xeon CPU", util::format_double(cpu24, 1), "-", "-"});
  t.row({"NVIDIA V100 GPU", util::format_double(gpu, 1), "-",
         pct(gpu / cpu24)});
  t.row({"Xilinx Alveo U280", util::format_double(alveo.gflops, 2),
         pct(alveo.efficiency), pct(alveo.gflops / cpu24)});
  t.row({"Intel Stratix 10", util::format_double(stratix.gflops, 1),
         pct(stratix.efficiency), pct(stratix.gflops / cpu24)});
  return t;
}

util::Table table2(const Devices& devices) {
  util::Table t(
      "Table II: Alveo U280 kernel-only performance, HBM2 vs DDR-DRAM");
  t.header({"Grid points", "HBM2 performance (GFLOPS)",
            "DDR-DRAM performance (GFLOPS)", "DDR-DRAM overhead"});

  for (std::size_t m : {1, 4, 16, 67}) {
    const grid::GridDims dims = grid::paper_grid(m);
    auto result = [&](const fpga::MemoryTech& memory) {
      fpga::KernelOnlyInput input =
          kernel_input(devices.alveo, dims, 1, memory, 1.0);
      input.launch_overhead_s = devices.alveo.launch_overhead_s;
      return fpga::model_kernel_only(input);
    };
    const auto hbm = result(devices.alveo.memories.at(0));
    const auto ddr = result(devices.alveo.memories.at(1));
    t.row({util::format_cells(dims.cells()),
           util::format_double(hbm.gflops, 2),
           util::format_double(ddr.gflops, 2),
           util::format_double((hbm.gflops / ddr.gflops - 1.0) * 100.0, 0) +
               "%"});
  }
  return t;
}

std::vector<DeviceRun> overall_runs(const Devices& devices, bool overlapped) {
  std::vector<DeviceRun> runs;
  for (std::size_t m : figure_grid_sizes()) {
    const grid::GridDims dims = grid::paper_grid(m);
    runs.push_back(run_cpu_overall(devices.cpu, devices.cpu_power, dims));
    runs.push_back(run_gpu_overall(devices.v100, devices.v100_power, dims,
                                   overlapped));
    runs.push_back(run_fpga_overall(devices.alveo, devices.alveo_power, dims,
                                    overlapped));
    runs.push_back(run_fpga_overall(devices.stratix, devices.stratix_power,
                                    dims, overlapped));
  }
  return runs;
}

namespace {

util::Table figure_table(const Devices& devices, bool overlapped,
                         const std::string& caption,
                         double DeviceRun::*field, int decimals) {
  util::Table t(caption);
  t.header({"Device", "16M", "67M", "268M", "536M"});
  const auto runs = overall_runs(devices, overlapped);
  const auto sizes = figure_grid_sizes();

  for (std::size_t d = 0; d < 4; ++d) {  // CPU, GPU, Alveo, Stratix
    std::vector<std::string> cells;
    cells.push_back(runs[d].device);
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const DeviceRun& run = runs[s * 4 + d];
      cells.push_back(run.available
                          ? util::format_double(run.*field, decimals)
                          : std::string("n/a"));
    }
    t.row(std::move(cells));
  }
  return t;
}

}  // namespace

util::Table fig5(const Devices& devices) {
  return figure_table(
      devices, false,
      "Fig. 5: overall performance, GFLOPS, no transfer/compute overlap "
      "(higher is better)",
      &DeviceRun::gflops, 2);
}

util::Table fig6(const Devices& devices) {
  return figure_table(
      devices, true,
      "Fig. 6: overall performance, GFLOPS, transfers overlapped with "
      "compute (higher is better)",
      &DeviceRun::gflops, 2);
}

util::Table fig7(const Devices& devices) {
  return figure_table(devices, true,
                      "Fig. 7: power usage, Watts, overlapped runs "
                      "(lower is better)",
                      &DeviceRun::power_w, 1);
}

util::Table fig8(const Devices& devices) {
  return figure_table(devices, true,
                      "Fig. 8: power efficiency, GFLOPS/Watt, overlapped "
                      "runs (higher is better)",
                      &DeviceRun::gflops_per_watt, 3);
}

}  // namespace pw::exp
