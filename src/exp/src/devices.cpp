#include "pw/exp/devices.hpp"

namespace pw::exp {

Devices paper_devices() { return {}; }

}  // namespace pw::exp
