#pragma once

#include <ostream>
#include <string>

#include "pw/exp/devices.hpp"

namespace pw::exp {

/// Renders every paper artefact (Tables I–II, Figs. 5–8 as tables) into
/// one self-contained markdown document — the `pwadvect figures --md=`
/// output and the basis of EXPERIMENTS.md regeneration.
void write_markdown_report(const Devices& devices, std::ostream& os);

std::string markdown_report(const Devices& devices);

}  // namespace pw::exp
