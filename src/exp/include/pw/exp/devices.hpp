#pragma once

#include <string>

#include "pw/fpga/device_profiles.hpp"
#include "pw/gpu/v100.hpp"
#include "pw/power/power_model.hpp"

namespace pw::exp {

/// The paper's CPU comparator: a 24-core Xeon Platinum (Cascade Lake)
/// 8260M running the Fortran/OpenMP MONC kernel. Kernel-only numbers from
/// Table I; the CPU needs no PCIe transfers so they are also its overall
/// numbers in Figs. 5/6.
struct CpuProfile {
  std::string name = "24 core Xeon CPU";
  double gflops_single_core = 2.09;
  double gflops_all_cores = 15.2;
  std::size_t cores = 24;
};

/// The full hardware cast of the paper's evaluation.
struct Devices {
  fpga::FpgaDeviceProfile alveo = fpga::alveo_u280();
  fpga::FpgaDeviceProfile stratix = fpga::stratix10_520n();
  gpu::GpuProfile v100 = gpu::tesla_v100();
  CpuProfile cpu;

  power::PowerProfile alveo_power = power::alveo_u280_power();
  power::PowerProfile stratix_power = power::stratix10_power();
  power::PowerProfile v100_power = power::v100_power();
  power::PowerProfile cpu_power = power::xeon_8260m_power();
};

Devices paper_devices();

}  // namespace pw::exp
