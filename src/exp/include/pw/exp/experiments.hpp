#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pw/exp/devices.hpp"
#include "pw/power/power_model.hpp"
#include "pw/util/table.hpp"

namespace pw::exp {

/// One device's result for one grid size in an overall-performance
/// experiment (one bar of Fig. 5 or Fig. 6).
struct DeviceRun {
  std::string device;
  std::size_t cells = 0;
  bool available = true;     ///< false: data set does not fit (V100 @ 536M)
  double seconds = 0.0;
  double gflops = 0.0;
  double compute_utilisation = 0.0;
  double transfer_utilisation = 0.0;
  power::ActiveMemory memory = power::ActiveMemory::kNone;
  /// Fraction of the device-memory bandwidth left to the kernels after
  /// overlapped PCIe DMA (1.0 when uncontended; < 1 only for DDR+overlap).
  double memory_share = 1.0;
  double power_w = 0.0;
  double gflops_per_watt = 0.0;
  std::string note;
};

/// Grid sizes (million cells) used in the multi-kernel figures.
std::vector<std::size_t> figure_grid_sizes();  // {16, 67, 268, 536}

/// Table I — kernel-only performance @16M cells: 1-core CPU, 24-core CPU,
/// V100, one kernel on the Alveo U280 (HBM2) and on the Stratix 10.
util::Table table1(const Devices& devices);

/// Table II — Alveo U280 kernel-only, HBM2 vs DDR, 1M/4M/16M/67M cells.
util::Table table2(const Devices& devices);

/// The runs behind Figs. 5-8. `overlapped` selects Fig. 5 (false) or
/// Fig. 6/7/8 (true) scheduling.
std::vector<DeviceRun> overall_runs(const Devices& devices, bool overlapped);

util::Table fig5(const Devices& devices);   ///< overall GFLOPS, no overlap
util::Table fig6(const Devices& devices);   ///< overall GFLOPS, overlapped
util::Table fig7(const Devices& devices);   ///< power (W), overlapped runs
util::Table fig8(const Devices& devices);   ///< GFLOPS/W, overlapped runs

/// One FPGA device on one grid — exposed for ablation benches.
DeviceRun run_fpga_overall(const fpga::FpgaDeviceProfile& device,
                           const power::PowerProfile& power,
                           const grid::GridDims& dims, bool overlapped,
                           std::size_t x_chunks = 16);

/// The V100 on one grid.
DeviceRun run_gpu_overall(const gpu::GpuProfile& gpu,
                          const power::PowerProfile& power,
                          const grid::GridDims& dims, bool overlapped,
                          std::size_t x_chunks = 16);

/// The CPU on one grid (no transfers; kernel-only = overall).
DeviceRun run_cpu_overall(const CpuProfile& cpu,
                          const power::PowerProfile& power,
                          const grid::GridDims& dims);

}  // namespace pw::exp
