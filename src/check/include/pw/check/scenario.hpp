#pragma once

// The named scenario registry: each scenario wires a fresh (instrumented)
// Stream instance to a set of thread roles plus the oracles that judge
// every explored execution. Macro-neutral — the instrumented world is
// sealed inside scenarios.cpp (the only TU of pw_check built with
// PW_CHECK=1); callers here only see std::function bodies.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pw/check/history.hpp"
#include "pw/check/sched.hpp"

namespace pw::check {

/// One live exploration subject: a fresh stream plus the role closures
/// that operate on it. Recreated for every execution so state never leaks
/// between interleavings.
class ScenarioInstance {
 public:
  virtual ~ScenarioInstance() = default;

  /// One body per virtual thread; index = thread id in traces.
  virtual std::vector<std::function<void()>> bodies() = 0;

  /// Driver-side epilogue after every role finished (or was unwound):
  /// drain leftovers into the history, release knobs. Runs outside the
  /// scheduler, must not block.
  virtual void finalize() = 0;

  virtual History& history() = 0;
  virtual std::size_t capacity() const = 0;

  /// Apply the linearizability oracle? Batch scenarios opt out (push_n is
  /// deliberately not one atomic linearisation point) and rely on the
  /// conservation invariants.
  virtual bool check_linearizability() const { return true; }

  /// See InvariantPolicy::close_ordered.
  virtual bool close_ordered() const { return true; }
};

struct ScenarioSpec {
  std::string name;     ///< e.g. "spsc.relay"
  std::string summary;  ///< one-liner for `pwcheck --list`
  int threads = 2;
  /// Negative scenarios (the seeded relaxed-publish bug, the wedged
  /// consumer): the checker MUST report a violation; not finding one is
  /// the failure.
  bool expect_violation = false;
  /// Per-scenario default divergence budget (CheckOptions overrides win).
  int default_preemptions = 2;
  std::function<std::unique_ptr<ScenarioInstance>()> make;
};

/// All registered scenarios, in suite order.
const std::vector<ScenarioSpec>& scenarios();

/// nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

/// Explore one scenario under `options`; implemented by the scheduler
/// (sched.cpp).
ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             const CheckOptions& options);

}  // namespace pw::check
