#pragma once

// Hook surface between the pw::check atomics shim (shim.hpp, PW_CHECK=1
// flavour) and the virtual scheduler (sched.cpp). This header is
// macro-neutral: it compiles identically with and without PW_CHECK, so it
// can be included from both instrumented TUs (via shim.hpp) and plain
// ones (tests, the pwcheck CLI) without ODR hazards.
//
// All hooks are no-ops when the calling thread is not registered with a
// live pw::check engine — instrumented code executed outside an
// exploration (e.g. scenario setup on the driver thread) runs at full
// speed on the real memory model.

#include <atomic>

namespace pw::check::rt {

/// Pre-read scheduling + visibility point. acquire/seq_cst loads are
/// scheduling decisions; relaxed loads are bookkeeping only.
void hook_load(const void* location, std::memory_order order);

/// Pre-write scheduling + visibility point (the store itself executes
/// after this returns, before the thread can be descheduled again).
void hook_store(const void* location, std::memory_order order);

/// Post-write notification: bumps the global store stamp that wakes
/// spin-blocked threads.
void hook_store_committed(const void* location);

/// Pre-RMW point. Every RMW is a scheduling decision regardless of order.
void hook_rmw(const void* location, std::memory_order order);

/// A compare-exchange that failed: downgrade the write half (pure load
/// visibility applies; no store stamp).
void hook_rmw_failed(const void* location, std::memory_order order);

/// Plain (non-atomic) accesses to ring cells; feed the happens-before
/// race detector.
void hook_data_read(const void* location);
void hook_data_write(const void* location);

/// Spin-loop scheduling point (Backoff::pause under the checker). The
/// calling thread blocks until some other thread commits a store; if no
/// such thread can exist the engine reports a deadlock. May throw
/// AbortExecution to unwind a thread when an execution is being drained —
/// this is the only hook that throws, and every blocking wait in the
/// stream fabric reaches it through Backoff.
void hook_spin_yield();

/// True when the calling thread is registered with a live engine.
bool under_checker() noexcept;

/// The publication order used by the SPSC ring's tail store under the
/// checker: memory_order_release normally, memory_order_relaxed when the
/// seeded-bug knob is armed (set_relaxed_publish_bug). Test-only.
std::memory_order publish_order() noexcept;
void set_relaxed_publish_bug(bool armed) noexcept;

}  // namespace pw::check::rt
