#pragma once

// Operation histories and the correctness oracles pw::check applies to
// them. Macro-neutral (shared by instrumented and plain TUs).
//
// Scenario roles bracket every stream operation with begin()/end_*() so
// each record carries real-time invocation/response stamps from a single
// monotonic counter — the threads are serialised by the scheduler, so the
// stamps totally order all history events of one execution. The oracles
// then check:
//
//   1. linearizability (Wing & Gong style DFS with memoisation) against a
//      sequential referee encoding MutexStream's contract;
//   2. element-conservation invariants: nothing lost, duplicated,
//      invented, or reordered per producer/consumer pair — across
//      wraparound and push_n/pop_n batches;
//   3. the close contracts: push->false and TryPop::kClosed only after a
//      close, kClosed finality when no push can race the close.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pw::check {

enum class OpKind {
  kPush,          ///< blocking push; ok = accepted
  kTryPush,       ///< non-blocking push; ok = accepted
  kPop,           ///< blocking pop; ok = value, !ok = nullopt (closed+drained)
  kTryPopValue,   ///< TryPop::kValue
  kTryPopClosed,  ///< TryPop::kClosed
  kPushN,         ///< batched push; values = accepted prefix
  kPopN,          ///< batched pop; values = delivered elements
  kClose,
  kExpect,        ///< in-scenario assertion; ok = held
};

struct OpRecord {
  int thread = -1;
  OpKind kind = OpKind::kExpect;
  std::uint64_t invoked = 0;
  std::uint64_t returned = 0;
  bool ok = true;
  long long value = 0;
  std::vector<long long> values;
  std::string note;
  bool live = true;  ///< false: discarded (e.g. a TryPop::kEmpty poll)
};

/// Per-execution history. Threads are serialised by the scheduler, so
/// appends never race; records are completed in place via the index begin()
/// returns so blocking calls get honest [invoked, returned] intervals.
class History {
 public:
  void clear();

  std::size_t begin(int thread, OpKind kind);
  void end_push(std::size_t idx, long long value, bool ok);
  void end_pop(std::size_t idx, std::optional<long long> value);
  /// status: 0 = kValue, 1 = kEmpty (record discarded), 2 = kClosed.
  void end_try_pop(std::size_t idx, int status, long long value);
  void end_batch(std::size_t idx, std::vector<long long> values);
  void end_close(std::size_t idx);

  /// Record an in-scenario assertion (no interval; stamps are immediate).
  void expect(int thread, bool held, std::string note);

  /// Elements still in the stream after every role finished (driver-side
  /// drain) — the conservation oracle's third bucket.
  void set_leftover(std::vector<long long> values);

  const std::vector<OpRecord>& ops() const noexcept { return ops_; }
  const std::vector<long long>& leftover() const noexcept {
    return leftover_;
  }

 private:
  std::uint64_t stamp() { return next_stamp_++; }

  std::vector<OpRecord> ops_;
  std::vector<long long> leftover_;
  std::uint64_t next_stamp_ = 1;  ///< 0 = "never returned" sentinel
};

/// Sequential model of the MutexStream referee's contract — the
/// specification the lock-free history must linearise against. Also used
/// directly by test_check's differential test, which replays random
/// operation scripts against a real MutexStream and this model in
/// lockstep.
class Referee {
 public:
  explicit Referee(std::size_t capacity) : capacity_(capacity) {}

  /// Would the blocking call return immediately? (Sequential clients must
  /// not issue calls that would block: there is no peer to unblock them.)
  bool push_ready() const noexcept {
    return closed_ || queue_.size() < capacity_;
  }
  bool pop_ready() const noexcept { return closed_ || !queue_.empty(); }

  bool push(long long value);             ///< false iff closed
  bool try_push(long long value);         ///< false iff closed or full
  std::optional<long long> pop();         ///< nullopt iff closed and empty
  /// 0 = value, 1 = empty (more may come), 2 = closed and drained.
  int try_pop(long long* out);
  void close() noexcept { closed_ = true; }

  bool closed() const noexcept { return closed_; }
  std::size_t size() const noexcept { return queue_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Serialised state for linearizability memoisation.
  std::string key() const;

 private:
  std::size_t capacity_;
  std::vector<long long> queue_;
  bool closed_ = false;
};

/// Wing–Gong linearizability: does some permutation of the completed
/// operations, consistent with their real-time intervals, replay legally
/// on the referee? Records with kind kExpect / kPushN / kPopN or
/// live == false are ignored (batches are checked by the invariants
/// instead — a batch is deliberately not one atomic linearisation point).
/// Returns false and fills `why` when no witness exists.
bool linearizable(const std::vector<OpRecord>& ops, std::size_t capacity,
                  std::string* why);

struct InvariantPolicy {
  /// True when the scenario orders every push before the close (no push
  /// can race close()): TryPop::kClosed is then final for the whole
  /// execution and pops after it must not produce values.
  bool close_ordered = true;
};

/// The conservation/order/close-contract oracles. Returns one message per
/// violated invariant (empty = clean).
std::vector<std::string> check_invariants(const History& history,
                                          const InvariantPolicy& policy);

}  // namespace pw::check
