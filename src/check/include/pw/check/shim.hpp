#pragma once

// The pw::check atomics shim — the single point where the lock-free stream
// fabric becomes model-checkable without forking its source.
//
// Production builds (PW_CHECK undefined or 0): `pw::check::atomic<T>` IS
// `std::atomic<T>` (a using-alias, not a wrapper — zero overhead by
// construction), every hook below is an empty inline function the optimiser
// erases, and `publish_order()` is a constexpr `memory_order_release`.
// test_check's static_assert and the BENCH_streams.json handoff gate both
// pin this down.
//
// Checker builds (a TU compiled with -DPW_CHECK=1 — only the pw::check
// scenario library does this): `atomic<T>` becomes a plain value whose
// every load/store/RMW first calls into the pw::check runtime
// (pw/check/runtime.hpp), which serialises threads under a virtual
// scheduler, models release/acquire visibility with vector clocks, and
// treats each operation as a potential preemption point. The data hooks
// feed the happens-before race detector that catches element reads not
// ordered after their construction — the stale-read bug class TSan cannot
// see unless the schedule happens to fire it.
//
// ODR note: the same templates (SpscRing, Stream, ...) would otherwise be
// instantiated with *different* definitions in production and checker TUs
// of one binary. PW_CHECK_ABI_BEGIN/END version the enclosing namespace
// (`fabric` vs `modelchecked`, both inline) so the two worlds get distinct
// symbols and never collide at link time.

#include <atomic>

#if defined(PW_CHECK) && PW_CHECK
#define PW_CHECK_ACTIVE 1
#else
#define PW_CHECK_ACTIVE 0
#endif

#if PW_CHECK_ACTIVE
#define PW_CHECK_ABI_BEGIN inline namespace modelchecked {
#define PW_CHECK_ABI_END }
#include "pw/check/runtime.hpp"
#else
#define PW_CHECK_ABI_BEGIN inline namespace fabric {
#define PW_CHECK_ABI_END }
#endif

namespace pw::check {

#if !PW_CHECK_ACTIVE

inline namespace prodshim {

/// Production: the shim is the real thing. `std::is_same_v<atomic<T>,
/// std::atomic<T>>` holds, so there is nothing to measure.
template <typename T>
using atomic = std::atomic<T>;

/// The SPSC ring's element-publication order. Constexpr release in
/// production; the checker build routes it through a runtime knob so tests
/// can seed a relaxed-publish ordering bug and prove the checker sees it.
constexpr std::memory_order publish_order() noexcept {
  return std::memory_order_release;
}

/// Race-detector annotations for plain (non-atomic) accesses to ring
/// cells. No-ops in production.
inline void data_read(const void*) noexcept {}
inline void data_write(const void*) noexcept {}

/// Scheduling point for spin loops (Backoff). No-op in production — the
/// Backoff pause ladder is untouched.
inline void spin_yield() noexcept {}

/// True when the calling thread runs under a pw::check scheduler. Always
/// false in production TUs.
inline bool under_checker() noexcept { return false; }

}  // namespace prodshim

#else  // PW_CHECK_ACTIVE

inline namespace checkshim {

/// Checker build: a std::atomic look-alike whose operations are routed
/// through the virtual scheduler before touching the value. The scheduler
/// serialises all participating threads, so the plain member reads/writes
/// below can never actually race; "what would race on real hardware" is
/// recomputed from the modelled memory orders instead.
///
/// Only the API surface the stream fabric uses is provided (load, store,
/// exchange, fetch_add/sub, compare_exchange_weak/strong). Seq-cst total
/// order is not modelled beyond its acquire/release strength — see
/// docs/static_analysis.md for the model's limits.
template <typename T>
class atomic {
 public:
  atomic() noexcept = default;
  constexpr atomic(T value) noexcept : value_(value) {}
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    rt::hook_load(this, order);
    return value_;
  }

  void store(T value, std::memory_order order = std::memory_order_seq_cst) {
    rt::hook_store(this, order);
    value_ = value;
    rt::hook_store_committed(this);
  }

  T exchange(T value, std::memory_order order = std::memory_order_seq_cst) {
    rt::hook_rmw(this, order);
    T previous = value_;
    value_ = value;
    rt::hook_store_committed(this);
    return previous;
  }

  T fetch_add(T delta, std::memory_order order = std::memory_order_seq_cst) {
    rt::hook_rmw(this, order);
    T previous = value_;
    value_ = static_cast<T>(previous + delta);
    rt::hook_store_committed(this);
    return previous;
  }

  T fetch_sub(T delta, std::memory_order order = std::memory_order_seq_cst) {
    rt::hook_rmw(this, order);
    T previous = value_;
    value_ = static_cast<T>(previous - delta);
    rt::hook_store_committed(this);
    return previous;
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order =
                                 std::memory_order_seq_cst) {
    return cas(expected, desired, order);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order =
                                   std::memory_order_seq_cst) {
    return cas(expected, desired, order);
  }

 private:
  // The model has no spurious CAS failures: compare_exchange_weak behaves
  // like strong. A schedule that needs a spurious failure to go wrong is
  // outside the explored space (documented limitation).
  bool cas(T& expected, T desired, std::memory_order order) {
    rt::hook_rmw(this, order);
    if (value_ == expected) {
      value_ = desired;
      rt::hook_store_committed(this);
      return true;
    }
    expected = value_;
    rt::hook_rmw_failed(this, order);
    return false;
  }

  T value_{};
};

inline std::memory_order publish_order() noexcept {
  return rt::publish_order();
}

inline void data_read(const void* location) { rt::hook_data_read(location); }
inline void data_write(const void* location) {
  rt::hook_data_write(location);
}

inline void spin_yield() { rt::hook_spin_yield(); }

inline bool under_checker() noexcept { return rt::under_checker(); }

}  // namespace checkshim

#endif  // PW_CHECK_ACTIVE

}  // namespace pw::check
