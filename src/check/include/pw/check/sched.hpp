#pragma once

// Public types of the pw::check virtual scheduler. Macro-neutral: this
// header is identical with and without PW_CHECK, so the pwcheck CLI and
// test_check (plain TUs) share it with the instrumented scenario library.
//
// The scheduler itself (sched.cpp) serialises the scenario's threads —
// exactly one runs at a time, handing a token over at every scheduling
// decision point (acquire/seq_cst loads, release/seq_cst stores, every
// RMW, every Backoff spin yield) — and drives a DFS over those decisions
// with a preemption budget: following the lowest-numbered runnable thread
// is free, every divergence from that default costs one unit. Release/
// acquire visibility is modelled with vector clocks so a stale-read bug
// (e.g. a relaxed store where a release is required) is caught as a
// happens-before race on the ring cell even though the host executes the
// exploration on one core in program order.

#include <cstdint>
#include <string>
#include <vector>

#include "pw/lint/diagnostic.hpp"

namespace pw::check {

/// Exploration budget and mode for one scenario run.
struct CheckOptions {
  /// DFS divergence budget: how many times one execution may depart from
  /// the deterministic default schedule (the running thread, else the
  /// lowest runnable). 0 explores only the baseline schedule; 2 covers
  /// every bug reachable with two preemptions — the classic CHESS
  /// observation is that real bugs almost always need very few.
  int max_preemptions = 2;

  /// Hard caps so a mis-sized scenario degrades into `truncated = true`
  /// instead of hanging CI.
  std::uint64_t max_executions = 20000;
  std::uint64_t max_steps = 200000;  ///< per execution, scheduler events

  /// When > 0, run this many uniformly random schedules (seeded below)
  /// instead of the bounded DFS — a smoke mode for very large scenarios.
  std::uint64_t random_walks = 0;
  std::uint64_t seed = 1;

  /// Non-empty: replay exactly this schedule (one thread id per decision,
  /// as printed in a violation trace / format_schedule) and stop after
  /// one execution. Decisions beyond the vector follow the default rule.
  std::vector<int> replay;
};

/// Result of exploring one scenario.
struct ScenarioOutcome {
  std::string scenario;
  bool violation = false;
  bool truncated = false;  ///< a budget cap fired before exhaustion
  std::uint64_t executions = 0;
  std::uint64_t decisions = 0;   ///< scheduling decisions across all runs
  std::uint64_t max_depth = 0;   ///< longest execution, in decisions
  /// Thread choice per decision of the first violating execution — feed it
  /// back through CheckOptions::replay (or `pwcheck --replay=`) for a
  /// deterministic repro.
  std::vector<int> failing_schedule;
  /// Violations in the pw::lint Diagnostic shape (check ids are
  /// "check.data_race", "check.deadlock", "check.linearizability",
  /// "check.invariant", "check.contract").
  std::vector<lint::Diagnostic> diagnostics;
};

/// Thrown through scenario thread bodies to unwind them when an execution
/// is abandoned (violation found mid-run, deadlock drain, replay end).
/// Only ever raised from the Backoff spin-yield hook, which every blocking
/// wait in the stream fabric reaches.
struct AbortExecution {};

/// "0,1,0,2" <-> {0,1,0,2} — the trace syntax printed in diagnostics and
/// accepted by `pwcheck --replay=`.
std::string format_schedule(const std::vector<int>& schedule);
std::vector<int> parse_schedule(const std::string& text);

}  // namespace pw::check
