#pragma once

// Exporters: fold scenario outcomes into the pw::lint Diagnostic/report
// shape (one verdict language for both static analysis layers) and into
// the obs registry for the JSON artefact CI validates.

#include <string>
#include <vector>

#include "pw/check/sched.hpp"
#include "pw/lint/diagnostic.hpp"
#include "pw/obs/metrics.hpp"

namespace pw::check {

/// An outcome judged against its scenario's expectation: a negative
/// scenario that *was* caught is a pass, a clean run of a positive
/// scenario is a pass, everything else fails.
struct JudgedOutcome {
  ScenarioOutcome outcome;
  bool expected_violation = false;
  bool passed() const noexcept {
    return outcome.violation == expected_violation;
  }
};

/// One LintReport over the whole suite. Violation diagnostics pass
/// through verbatim (demoted to kInfo with an "expected:" prefix when the
/// scenario wanted them); every scenario additionally contributes a
/// "check.explored" info with its exploration stats, and an unexpected
/// verdict (missed bug, unwanted violation) becomes a "check.verdict"
/// error.
lint::LintReport to_lint_report(const std::vector<JudgedOutcome>& judged);

/// Publish suite counters/gauges under `<prefix>.<scenario>.*`
/// (executions, decisions, violations, passed) — same registry JSON shape
/// scripts/check_bench_json.py validates.
void publish(const std::vector<JudgedOutcome>& judged,
             obs::MetricsRegistry& registry,
             const std::string& prefix = "check");

}  // namespace pw::check
