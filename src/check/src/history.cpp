#include "pw/check/history.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace pw::check {

// ---- History -------------------------------------------------------------

void History::clear() {
  ops_.clear();
  leftover_.clear();
  next_stamp_ = 1;  // 0 stays the "never returned" sentinel
}

std::size_t History::begin(int thread, OpKind kind) {
  OpRecord record;
  record.thread = thread;
  record.kind = kind;
  record.invoked = stamp();
  ops_.push_back(std::move(record));
  return ops_.size() - 1;
}

void History::end_push(std::size_t idx, long long value, bool ok) {
  OpRecord& record = ops_[idx];
  record.returned = stamp();
  record.value = value;
  record.ok = ok;
}

void History::end_pop(std::size_t idx, std::optional<long long> value) {
  OpRecord& record = ops_[idx];
  record.returned = stamp();
  record.ok = value.has_value();
  record.value = value.value_or(0);
}

void History::end_try_pop(std::size_t idx, int status, long long value) {
  OpRecord& record = ops_[idx];
  record.returned = stamp();
  if (status == 0) {
    record.kind = OpKind::kTryPopValue;
    record.value = value;
  } else if (status == 2) {
    record.kind = OpKind::kTryPopClosed;
  } else {
    // kEmpty polls carry no linearisation obligation we check (the
    // scheduler's deadlock oracle already proves pollers terminate);
    // recording them would only blow up the Wing–Gong search.
    record.live = false;
  }
}

void History::end_batch(std::size_t idx, std::vector<long long> values) {
  OpRecord& record = ops_[idx];
  record.returned = stamp();
  record.values = std::move(values);
}

void History::end_close(std::size_t idx) {
  ops_[idx].returned = stamp();
}

void History::expect(int thread, bool held, std::string note) {
  OpRecord record;
  record.thread = thread;
  record.kind = OpKind::kExpect;
  record.invoked = stamp();
  record.returned = stamp();
  record.ok = held;
  record.note = std::move(note);
  ops_.push_back(std::move(record));
}

void History::set_leftover(std::vector<long long> values) {
  leftover_ = std::move(values);
}

// ---- Referee -------------------------------------------------------------

bool Referee::push(long long value) {
  if (closed_) {
    return false;
  }
  queue_.push_back(value);
  return true;
}

bool Referee::try_push(long long value) {
  if (closed_ || queue_.size() >= capacity_) {
    return false;
  }
  queue_.push_back(value);
  return true;
}

std::optional<long long> Referee::pop() {
  if (!queue_.empty()) {
    const long long value = queue_.front();
    queue_.erase(queue_.begin());
    return value;
  }
  return std::nullopt;  // legal only when closed (pop_ready gates callers)
}

int Referee::try_pop(long long* out) {
  if (!queue_.empty()) {
    if (out != nullptr) {
      *out = queue_.front();
    }
    queue_.erase(queue_.begin());
    return 0;
  }
  return closed_ ? 2 : 1;
}

std::string Referee::key() const {
  std::ostringstream out;
  out << (closed_ ? 'c' : 'o');
  for (const long long value : queue_) {
    out << ':' << value;
  }
  return out.str();
}

// ---- Linearizability (Wing & Gong) --------------------------------------

namespace {

bool lin_relevant(const OpRecord& record) {
  if (!record.live || record.returned == 0) {
    return false;
  }
  switch (record.kind) {
    case OpKind::kPush:
    case OpKind::kTryPush:
    case OpKind::kPop:
    case OpKind::kTryPopValue:
    case OpKind::kTryPopClosed:
    case OpKind::kClose:
      return true;
    default:
      return false;  // batches and expects are judged by the invariants
  }
}

/// Can `record` legally be the next sequential operation on `referee`,
/// reproducing its recorded result? Mutates `referee` when legal.
bool apply(const OpRecord& record, Referee& referee) {
  switch (record.kind) {
    case OpKind::kPush:
      if (record.ok) {
        return !referee.closed() &&
               referee.size() < referee.capacity() &&
               referee.push(record.value);
      }
      return referee.closed();  // a blocking push fails only on close
    case OpKind::kTryPush:
      if (record.ok) {
        return referee.try_push(record.value);
      }
      return referee.closed() || referee.size() >= referee.capacity();
    case OpKind::kPop:
      if (record.ok) {
        if (referee.size() == 0) {
          return false;
        }
        return referee.pop() == record.value;
      }
      return referee.closed() && referee.size() == 0;
    case OpKind::kTryPopValue: {
      long long value = 0;
      return referee.try_pop(&value) == 0 && value == record.value;
    }
    case OpKind::kTryPopClosed:
      return referee.closed() && referee.size() == 0;
    case OpKind::kClose:
      referee.close();
      return true;
    default:
      return false;
  }
}

struct LinSearch {
  const std::vector<const OpRecord*>& ops;
  std::size_t capacity;
  std::unordered_set<std::string> visited;

  bool search(std::uint64_t taken_mask, const Referee& state) {
    if (taken_mask + 1 == (std::uint64_t{1} << ops.size())) {
      return true;
    }
    {
      std::ostringstream memo;
      memo << taken_mask << '|' << state.key();
      if (!visited.insert(memo.str()).second) {
        return false;
      }
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if ((taken_mask >> i) & 1) {
        continue;
      }
      // Real-time order: i may linearise first among the remaining ops
      // only if no remaining op completed before i was invoked.
      bool minimal = true;
      for (std::size_t j = 0; j < ops.size(); ++j) {
        if (j != i && !((taken_mask >> j) & 1) &&
            ops[j]->returned < ops[i]->invoked) {
          minimal = false;
          break;
        }
      }
      if (!minimal) {
        continue;
      }
      Referee next = state;
      if (!apply(*ops[i], next)) {
        continue;
      }
      if (search(taken_mask | (std::uint64_t{1} << i), next)) {
        return true;
      }
    }
    return false;
  }
};

const char* kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kPush:
      return "push";
    case OpKind::kTryPush:
      return "try_push";
    case OpKind::kPop:
      return "pop";
    case OpKind::kTryPopValue:
      return "try_pop=value";
    case OpKind::kTryPopClosed:
      return "try_pop=closed";
    case OpKind::kPushN:
      return "push_n";
    case OpKind::kPopN:
      return "pop_n";
    case OpKind::kClose:
      return "close";
    case OpKind::kExpect:
      return "expect";
  }
  return "?";
}

}  // namespace

bool linearizable(const std::vector<OpRecord>& ops, std::size_t capacity,
                  std::string* why) {
  std::vector<const OpRecord*> relevant;
  for (const OpRecord& record : ops) {
    if (lin_relevant(record)) {
      relevant.push_back(&record);
    }
  }
  if (relevant.size() >= 64) {
    if (why != nullptr) {
      *why = "history too long for the linearizability search";
    }
    return false;
  }
  LinSearch searcher{relevant, capacity, {}};
  if (searcher.search(0, Referee(capacity))) {
    return true;
  }
  if (why != nullptr) {
    std::ostringstream out;
    out << "ops = [";
    const char* separator = "";
    for (const OpRecord* record : relevant) {
      out << separator << 't' << record->thread << ':'
          << kind_name(record->kind);
      if (record->kind != OpKind::kClose &&
          record->kind != OpKind::kTryPopClosed) {
        out << '(' << record->value << (record->ok ? "" : ",rejected")
            << ')';
      }
      separator = ", ";
    }
    out << ']';
    *why = out.str();
  }
  return false;
}

// ---- Invariants ----------------------------------------------------------

namespace {

struct Accepted {
  int producer = -1;
  std::size_t order = 0;  ///< position within the producer's push sequence
};

void note(std::vector<std::string>& violations, std::ostringstream& msg) {
  violations.push_back(msg.str());
  msg.str({});
}

}  // namespace

std::vector<std::string> check_invariants(const History& history,
                                          const InvariantPolicy& policy) {
  std::vector<std::string> violations;
  std::ostringstream msg;

  // Gather accepted pushes (scalar + batch) in per-producer program order,
  // and every consumption (pops, try-pops, batch pops, driver drain).
  std::map<long long, Accepted> accepted;
  std::map<int, std::size_t> produced_counts;
  std::uint64_t first_close_invoked = 0;
  for (const OpRecord& record : history.ops()) {
    if (!record.live || record.returned == 0) {
      continue;
    }
    const bool accepted_push =
        (record.kind == OpKind::kPush || record.kind == OpKind::kTryPush) &&
        record.ok;
    if (accepted_push || record.kind == OpKind::kPushN) {
      std::vector<long long> values = record.values;
      if (accepted_push) {
        values.assign(1, record.value);
      }
      for (const long long value : values) {
        if (accepted.count(value) != 0) {
          msg << "value " << value << " accepted twice (scenario values "
              << "must be unique)";
          note(violations, msg);
          continue;
        }
        accepted[value] =
            Accepted{record.thread, produced_counts[record.thread]++};
      }
    }
    if (record.kind == OpKind::kClose &&
        (first_close_invoked == 0 || record.invoked < first_close_invoked)) {
      first_close_invoked = record.invoked;
    }
  }

  // Consumption order per consumer thread; history order is real order
  // (the scheduler serialises everything).
  std::map<int, std::vector<long long>> consumed_by;
  std::map<long long, int> pop_counts;
  for (const OpRecord& record : history.ops()) {
    if (!record.live || record.returned == 0) {
      continue;
    }
    std::vector<long long> values;
    if ((record.kind == OpKind::kPop && record.ok) ||
        record.kind == OpKind::kTryPopValue) {
      values.push_back(record.value);
    } else if (record.kind == OpKind::kPopN) {
      values = record.values;
    } else {
      continue;
    }
    for (const long long value : values) {
      consumed_by[record.thread].push_back(value);
      ++pop_counts[value];
    }
  }

  // 1. Nothing invented, nothing duplicated.
  for (const auto& [value, count] : pop_counts) {
    if (accepted.count(value) == 0) {
      msg << "popped value " << value << " was never accepted by a push";
      note(violations, msg);
    } else if (count > 1) {
      msg << "value " << value << " delivered " << count << " times";
      note(violations, msg);
    }
  }

  // 2. Conservation: accepted = popped + leftover (drained by the driver).
  std::map<long long, int> remaining;
  for (const auto& [value, info] : accepted) {
    (void)info;
    remaining[value] = 1;
  }
  for (const auto& [value, count] : pop_counts) {
    remaining[value] -= count;
  }
  for (const long long value : history.leftover()) {
    if (accepted.count(value) == 0) {
      msg << "leftover value " << value << " was never accepted";
      note(violations, msg);
    } else {
      remaining[value] -= 1;
    }
  }
  for (const auto& [value, balance] : remaining) {
    if (balance > 0) {
      msg << "value " << value << " lost: accepted but neither popped nor "
          << "left in the stream";
      note(violations, msg);
    } else if (balance < 0) {
      msg << "value " << value << " over-delivered (pops + leftover exceed "
          << "the single accept)";
      note(violations, msg);
    }
  }

  // 3. Per-producer FIFO per consumer: the subsequence of one producer's
  // values seen by one consumer must respect the producer's push order.
  for (const auto& [consumer, values] : consumed_by) {
    std::map<int, std::size_t> last_order;
    for (const long long value : values) {
      const auto it = accepted.find(value);
      if (it == accepted.end()) {
        continue;  // already reported as invented
      }
      const auto last = last_order.find(it->second.producer);
      if (last != last_order.end() && it->second.order < last->second) {
        msg << "consumer " << consumer << " saw producer "
            << it->second.producer << "'s value " << value
            << " after a later one (FIFO order violated)";
        note(violations, msg);
      }
      last_order[it->second.producer] = it->second.order;
    }
  }

  // 4. Close contracts.
  std::map<int, std::uint64_t> saw_closed_at;
  for (const OpRecord& record : history.ops()) {
    if (!record.live || record.returned == 0) {
      continue;
    }
    const bool rejected_push =
        (record.kind == OpKind::kPush || record.kind == OpKind::kTryPush) &&
        !record.ok;
    const bool saw_eos = record.kind == OpKind::kTryPopClosed ||
                         (record.kind == OpKind::kPop && !record.ok);
    // try_push may also fail on a full ring, so only the blocking flavour
    // implies a close.
    if (record.kind == OpKind::kPush && rejected_push &&
        (first_close_invoked == 0 ||
         first_close_invoked >= record.returned)) {
      msg << "thread " << record.thread << "'s push(" << record.value
          << ") was rejected with no close() begun before it returned";
      note(violations, msg);
    }
    if (saw_eos && (first_close_invoked == 0 ||
                    first_close_invoked >= record.returned)) {
      msg << "thread " << record.thread << " observed end-of-stream with "
          << "no close() begun before the observation returned";
      note(violations, msg);
    }
    if (saw_eos && saw_closed_at.count(record.thread) == 0) {
      saw_closed_at[record.thread] = record.returned;
    }
    if (policy.close_ordered) {
      const auto eos = saw_closed_at.find(record.thread);
      const bool delivered_value =
          ((record.kind == OpKind::kPop && record.ok) ||
           record.kind == OpKind::kTryPopValue ||
           (record.kind == OpKind::kPopN && !record.values.empty()));
      if (eos != saw_closed_at.end() && delivered_value &&
          record.invoked > eos->second) {
        msg << "thread " << record.thread << " received a value after "
            << "observing end-of-stream (kClosed must be final when no "
            << "push races the close)";
        note(violations, msg);
      }
    }
  }

  // 5. In-scenario assertions.
  for (const OpRecord& record : history.ops()) {
    if (record.kind == OpKind::kExpect && !record.ok) {
      msg << "expectation failed on thread " << record.thread << ": "
          << record.note;
      note(violations, msg);
    }
  }

  return violations;
}

}  // namespace pw::check
