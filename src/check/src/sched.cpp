// The pw::check virtual scheduler: serialises a scenario's threads behind
// a token, turns every synchronisation operation into a scheduling
// decision, and drives a bounded-divergence DFS over those decisions.
//
// Execution model
// ---------------
// A persistent pool of worker threads (one per scenario role) reruns the
// scenario once per explored schedule. Exactly one thread owns the token
// at any instant; ownership changes only inside decide_and_grant(), so
// the roles' memory operations are totally ordered and the instrumented
// `pw::check::atomic` can use plain member reads/writes. What *would*
// have been visible on real hardware is recomputed from the modelled
// memory orders with vector clocks:
//
//   - release (or stronger) store to L:  L.sync  = thread clock
//   - relaxed store to L:                L.sync  = {}   (breaks the
//                                        release sequence — C++20 rules)
//   - acquire (or stronger) load of L:   thread clock |= L.sync
//   - RMW on L: acquire half merges L.sync in; release half merges the
//     thread clock into L.sync (an RMW continues the release sequence, so
//     the existing sync is kept); relaxed RMWs leave L.sync untouched.
//
// Plain accesses to ring cells (data_read/data_write annotations in
// ring.hpp) are checked against that happens-before relation: an access
// not ordered after the previous write of the same cell is a data race —
// this is how a relaxed publish shows up deterministically even though
// the exploration host executes everything in program order.
//
// Scheduling decisions happen before acquire/seq_cst loads, before
// release/seq_cst stores, before every RMW, and at every Backoff spin
// yield. Relaxed loads/stores are visibility bookkeeping only — that is
// what keeps the per-execution decision count (and the DFS) small.
// Spin-yielding threads park until some peer commits a store (the only
// event that can change what they poll); "every unfinished thread is
// parked and no store can arrive" is therefore a sound deadlock verdict,
// not a heuristic timeout.
//
// The DFS follows a deterministic baseline (keep running the current
// thread; on a forced switch take the lowest runnable id) and pays one
// unit of divergence budget for every departure from it. With budget P
// this explores every schedule reachable with P preemptions — the CHESS
// observation that real concurrency bugs need very few.

#include "pw/check/sched.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pw/check/runtime.hpp"
#include "pw/check/scenario.hpp"

namespace pw::check {
namespace {

using Clock = std::vector<std::uint64_t>;

void join(Clock& into, const Clock& from) {
  if (from.empty()) {
    return;
  }
  if (into.size() < from.size()) {
    into.resize(from.size(), 0);
  }
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

enum class PointKind { kLoad, kStore, kRmw, kRmwFailed, kYield };

bool acquire_half(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst ||
         order == std::memory_order_consume;
}

bool release_half(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

/// Modelled synchronisation state of one atomic location.
struct AtomicLoc {
  Clock sync;
};

/// FastTrack-style race-detector state of one plain (cell) location.
struct DataLoc {
  int writer = -1;
  std::uint64_t write_tick = 0;
  Clock reads;
};

struct Decision {
  std::vector<int> alternatives;  ///< [0] is the deterministic default
  std::size_t chosen = 0;
  int budget_before = 0;  ///< divergence units spent prior to this point
};

class Engine;

thread_local Engine* tls_engine = nullptr;
thread_local int tls_vid = -1;

/// The seeded-bug knob (rt::set_relaxed_publish_bug). Process-global and
/// genuinely atomic: it is read by instrumented code but is not itself
/// part of the modelled state.
std::atomic<bool> g_relaxed_publish{false};

class Engine {
 public:
  Engine(const ScenarioSpec& spec, const CheckOptions& options)
      : spec_(spec), options_(options), threads_(spec.threads) {}

  ScenarioOutcome run() {
    ScenarioOutcome out;
    out.scenario = spec_.name;
    start_workers();

    const bool replay_mode = !options_.replay.empty();
    const bool random_mode = options_.random_walks > 0;
    const std::uint64_t execution_budget =
        replay_mode ? 1
                    : (random_mode ? options_.random_walks
                                   : options_.max_executions);
    std::mt19937_64 rng(options_.seed);

    for (;;) {
      if (out.executions >= execution_budget) {
        if (!replay_mode && !random_mode) {
          out.truncated = true;  // DFS not exhausted
        }
        break;
      }
      run_one_execution(rng, random_mode);
      ++out.executions;
      out.decisions += path_.size();
      out.max_depth = std::max<std::uint64_t>(out.max_depth, path_.size());
      if (step_truncated_) {
        out.truncated = true;
      }
      if (!exec_diags_.empty()) {
        out.violation = true;
        out.failing_schedule = schedule_from_path();
        const std::string replay_hint =
            "replay: pwcheck --scenario=" + spec_.name +
            " --replay=" + format_schedule(out.failing_schedule);
        for (auto& diag : exec_diags_) {
          diag.fix_hint = diag.fix_hint.empty()
                              ? replay_hint
                              : diag.fix_hint + "; " + replay_hint;
        }
        out.diagnostics = std::move(exec_diags_);
        break;
      }
      if (replay_mode) {
        break;
      }
      if (!random_mode && !advance_prefix()) {
        break;  // schedule space exhausted within the budget
      }
    }

    stop_workers();
    return out;
  }

  // ---- hook entry points (called by the shim on worker threads) ----

  void point(PointKind kind, const void* location, std::memory_order order) {
    std::unique_lock<std::mutex> lk(mu_);
    const int vid = tls_vid;
    if (exec_over_ || drain_mode_) {
      if (kind == PointKind::kYield && drain_mode_) {
        throw AbortExecution{};
      }
      return;  // free-running drain: no scheduling, no bookkeeping
    }
    if (++step_ > options_.max_steps) {
      step_truncated_ = true;
      begin_drain(lk);
      if (kind == PointKind::kYield) {
        throw AbortExecution{};
      }
      return;
    }

    const bool decision = kind == PointKind::kRmw ||
                          kind == PointKind::kYield ||
                          (kind == PointKind::kLoad && acquire_half(order)) ||
                          (kind == PointKind::kStore && release_half(order));
    if (decision) {
      schedule(lk, vid, kind == PointKind::kYield);
      if (exec_over_ || drain_mode_) {
        return;  // rescheduled into a drained world; skip the model
      }
    }

    // Visibility bookkeeping — after the decision so peers descheduled
    // above never observe sync state ahead of the operation itself; the
    // operation executes right after this returns, before the thread can
    // lose the token again.
    Clock& clock = clocks_[vid];
    ++clock[vid];
    switch (kind) {
      case PointKind::kLoad:
      case PointKind::kRmwFailed:
        if (acquire_half(order)) {
          join(clock, atomic_locs_[location].sync);
        }
        break;
      case PointKind::kStore: {
        AtomicLoc& loc = atomic_locs_[location];
        if (release_half(order)) {
          loc.sync = clock;
        } else {
          loc.sync.clear();  // a relaxed store heads no release sequence
        }
        break;
      }
      case PointKind::kRmw: {
        AtomicLoc& loc = atomic_locs_[location];
        if (acquire_half(order)) {
          join(clock, loc.sync);
        }
        if (release_half(order)) {
          // Merged, not replaced: an RMW continues an existing release
          // sequence. Done optimistically before the compare — harmless
          // in practice because the only acquire/release RMW the fabric
          // issues (scenario coordination counters) cannot fail.
          join(loc.sync, clock);
        }
        break;
      }
      case PointKind::kYield:
        break;
    }
  }

  void store_committed() {
    std::unique_lock<std::mutex> lk(mu_);
    if (exec_over_ || drain_mode_) {
      return;
    }
    ++store_stamp_;  // what wakes spin-blocked pollers
  }

  void data_access(const void* location, bool is_write) {
    std::unique_lock<std::mutex> lk(mu_);
    if (exec_over_ || drain_mode_) {
      return;
    }
    const int vid = tls_vid;
    Clock& clock = clocks_[vid];
    ++clock[vid];
    DataLoc& loc = data_locs_[location];
    bool raced = false;
    if (loc.writer >= 0 && loc.writer != vid &&
        loc.write_tick > clock[static_cast<std::size_t>(loc.writer)]) {
      raced = true;
    }
    if (is_write && !raced) {
      for (std::size_t t = 0; t < loc.reads.size(); ++t) {
        if (static_cast<int>(t) != vid && loc.reads[t] > clock[t]) {
          raced = true;
          break;
        }
      }
    }
    if (raced && !race_reported_) {
      race_reported_ = true;
      std::ostringstream msg;
      msg << "data race on ring cell " << location << ": thread " << vid
          << "'s access is not happens-before-ordered after thread "
          << loc.writer << "'s write (unpublished element — check the "
          << "publishing store's memory order)";
      record_locked(lint::Severity::kError, "check.data_race", msg.str());
    }
    if (is_write) {
      loc.writer = vid;
      loc.write_tick = clock[vid];
      loc.reads.assign(threads_, 0);
    } else {
      if (loc.reads.empty()) {
        loc.reads.assign(threads_, 0);
      }
      loc.reads[vid] = clock[vid];
    }
  }

  void spin_yield() { point(PointKind::kYield, nullptr, std::memory_order_relaxed); }

 private:
  static constexpr int kNoThread = -1;

  enum class ThreadState { kRunnable, kSpinBlocked, kFinished };

  // ---- worker pool ----

  void start_workers() {
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int vid = 0; vid < threads_; ++vid) {
      workers_.emplace_back([this, vid] { worker_main(vid); });
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
    workers_.clear();
  }

  void worker_main(int vid) {
    tls_engine = this;
    tls_vid = vid;
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t seen_epoch = 0;
    for (;;) {
      cv_.wait(lk, [&] {
        return shutdown_ || (exec_epoch_ > seen_epoch && token_ == vid);
      });
      if (shutdown_) {
        break;
      }
      seen_epoch = exec_epoch_;
      auto body = bodies_[static_cast<std::size_t>(vid)];
      lk.unlock();
      bool threw = false;
      std::string what;
      try {
        body();
      } catch (const AbortExecution&) {
      } catch (const std::exception& error) {
        threw = true;
        what = error.what();
      } catch (...) {
        threw = true;
        what = "non-standard exception";
      }
      lk.lock();
      if (threw && !drain_mode_) {
        record_locked(lint::Severity::kError, "check.contract",
                      "scenario body of thread " + std::to_string(vid) +
                          " threw: " + what);
      }
      finish_thread(lk, vid);
    }
    tls_engine = nullptr;
    tls_vid = -1;
  }

  // ---- one execution ----

  void run_one_execution(std::mt19937_64& rng, bool random_mode) {
    instance_ = spec_.make();
    bodies_ = instance_->bodies();
    {
      std::unique_lock<std::mutex> lk(mu_);
      states_.assign(static_cast<std::size_t>(threads_),
                     ThreadState::kRunnable);
      blocked_stamp_.assign(static_cast<std::size_t>(threads_), 0);
      yield_anchor_.assign(static_cast<std::size_t>(threads_), 0);
      clocks_.assign(static_cast<std::size_t>(threads_),
                     Clock(static_cast<std::size_t>(threads_), 0));
      atomic_locs_.clear();
      data_locs_.clear();
      path_.clear();
      exec_diags_.clear();
      step_ = 0;
      store_stamp_ = 0;
      finished_count_ = 0;
      budget_spent_ = 0;
      drain_mode_ = false;
      exec_over_ = false;
      exec_done_ = false;
      step_truncated_ = false;
      race_reported_ = false;
      rng_ = random_mode ? &rng : nullptr;
      ++exec_epoch_;
      decide_and_grant(lk, runnable_set(), kNoThread);
      cv_.wait(lk, [&] { return exec_done_; });
      exec_over_ = true;
      drained_ = drain_mode_;
    }
    instance_->finalize();
    // Oracles judge complete histories only: a drained execution was
    // abandoned mid-flight (deadlock already diagnosed, or a budget cap),
    // and a hook/body diagnostic already carries the verdict — re-judging
    // a half-history would fabricate lost-element findings.
    if (!drained_ && exec_diags_.empty()) {
      apply_oracles();
    }
    instance_.reset();
  }

  void apply_oracles() {
    const History& history = instance_->history();
    if (instance_->check_linearizability()) {
      std::string why;
      if (!linearizable(history.ops(), instance_->capacity(), &why)) {
        record_unlocked(lint::Severity::kError, "check.linearizability",
                        "history has no sequential witness on the "
                        "MutexStream referee model: " +
                            why);
      }
    }
    InvariantPolicy policy;
    policy.close_ordered = instance_->close_ordered();
    for (const std::string& violation :
         check_invariants(history, policy)) {
      record_unlocked(lint::Severity::kError, "check.invariant", violation);
    }
  }

  // ---- scheduling core (mu_ held) ----

  std::vector<int> runnable_set() const {
    std::vector<int> runnable;
    for (int vid = 0; vid < threads_; ++vid) {
      const auto index = static_cast<std::size_t>(vid);
      if (states_[index] == ThreadState::kRunnable ||
          (states_[index] == ThreadState::kSpinBlocked &&
           blocked_stamp_[index] < store_stamp_)) {
        runnable.push_back(vid);
      }
    }
    return runnable;
  }

  /// Called by a running thread at a decision point. `yielding` parks the
  /// caller until a store wakes it (Backoff collapse).
  ///
  /// The park is stamped with `yield_anchor_` — the store count at the
  /// *start* of this re-check iteration (the previous spin_yield return),
  /// not the current count. The thread's condition loads happen across
  /// several decision points, so a peer preempted in between may commit
  /// the store the sleeper is waiting for *before* the sleeper reaches
  /// its park; stamping at park time would lose that wakeup and report a
  /// phantom deadlock. Anchoring at the iteration start is sound: every
  /// store committed before the anchor is visible to all of this
  /// iteration's loads (the model returns latest values), and anything
  /// after the anchor conservatively re-wakes the thread for one more
  /// recheck.
  void schedule(std::unique_lock<std::mutex>& lk, int vid, bool yielding) {
    if (yielding) {
      states_[static_cast<std::size_t>(vid)] = ThreadState::kSpinBlocked;
      blocked_stamp_[static_cast<std::size_t>(vid)] =
          yield_anchor_[static_cast<std::size_t>(vid)];
    }
    const std::vector<int> runnable = runnable_set();
    if (runnable.empty()) {
      // Only reachable from a yield: every unfinished thread is parked on
      // a poll and no peer exists to commit the store they wait for.
      std::ostringstream msg;
      msg << "deadlock: no runnable thread; spin-blocked = {";
      const char* separator = "";
      for (int t = 0; t < threads_; ++t) {
        if (states_[static_cast<std::size_t>(t)] ==
            ThreadState::kSpinBlocked) {
          msg << separator << t;
          separator = ", ";
        }
      }
      msg << "}";
      record_locked(lint::Severity::kError, "check.deadlock", msg.str());
      begin_drain(lk);
      throw AbortExecution{};
    }
    decide_and_grant(lk, runnable, yielding ? kNoThread : vid);
    if (token_ != vid) {
      cv_.wait(lk, [&] { return token_ == vid; });
      if (drain_mode_ && yielding) {
        throw AbortExecution{};
      }
    }
    if (yielding) {
      // A fresh re-check iteration begins here.
      yield_anchor_[static_cast<std::size_t>(vid)] = store_stamp_;
    }
  }

  void decide_and_grant(std::unique_lock<std::mutex>&,
                        const std::vector<int>& runnable, int current) {
    // Default: keep running `current`; on a forced switch, the lowest id.
    int default_vid = runnable.front();
    if (current != kNoThread &&
        std::find(runnable.begin(), runnable.end(), current) !=
            runnable.end()) {
      default_vid = current;
    }
    int chosen_vid = default_vid;
    if (runnable.size() > 1) {
      Decision decision;
      decision.alternatives.push_back(default_vid);
      for (int vid : runnable) {
        if (vid != default_vid) {
          decision.alternatives.push_back(vid);
        }
      }
      decision.budget_before = budget_spent_;
      decision.chosen = choose_alternative(decision);
      budget_spent_ += decision.chosen != 0 ? 1 : 0;
      chosen_vid = decision.alternatives[decision.chosen];
      path_.push_back(std::move(decision));
    }
    grant(chosen_vid);
  }

  std::size_t choose_alternative(const Decision& decision) {
    const std::size_t index = path_.size();
    if (!options_.replay.empty()) {
      if (index < options_.replay.size()) {
        const int wanted = options_.replay[index];
        const auto it = std::find(decision.alternatives.begin(),
                                  decision.alternatives.end(), wanted);
        if (it == decision.alternatives.end()) {
          if (!replay_diverged_) {
            replay_diverged_ = true;
            record_locked(lint::Severity::kError, "check.replay",
                          "replay diverged at decision " +
                              std::to_string(index) + ": thread " +
                              std::to_string(wanted) + " is not runnable");
          }
          return 0;
        }
        return static_cast<std::size_t>(
            std::distance(decision.alternatives.begin(), it));
      }
      return 0;
    }
    if (rng_ != nullptr) {
      const bool can_diverge = budget_spent_ < options_.max_preemptions;
      const std::size_t limit =
          can_diverge ? decision.alternatives.size() : 1;
      return std::uniform_int_distribution<std::size_t>(0, limit - 1)(*rng_);
    }
    if (index < prefix_.size()) {
      return std::min(prefix_[index], decision.alternatives.size() - 1);
    }
    return 0;
  }

  void grant(int vid) {
    states_[static_cast<std::size_t>(vid)] = ThreadState::kRunnable;
    token_ = vid;
    cv_.notify_all();
  }

  void finish_thread(std::unique_lock<std::mutex>& lk, int vid) {
    states_[static_cast<std::size_t>(vid)] = ThreadState::kFinished;
    ++finished_count_;
    if (finished_count_ == threads_) {
      exec_done_ = true;
      token_ = kNoThread;
      cv_.notify_all();
      return;
    }
    if (drain_mode_) {
      grant_next_drain();
      return;
    }
    const std::vector<int> runnable = runnable_set();
    if (runnable.empty()) {
      std::ostringstream msg;
      msg << "deadlock: every unfinished thread is spin-blocked after "
             "thread "
          << vid << " finished";
      record_locked(lint::Severity::kError, "check.deadlock", msg.str());
      begin_drain(lk);
      return;
    }
    decide_and_grant(lk, runnable, kNoThread);
  }

  /// Abandon the rest of this execution. Only the mode flag flips here:
  /// the current token holder first runs (or unwinds) to completion, and
  /// its finish_thread() then chains through the remaining threads one at
  /// a time — at most one thread is ever live, so the free-running
  /// (model-off) drain can never introduce a real race. Parked pollers
  /// unwind via AbortExecution from their yield point.
  void begin_drain(std::unique_lock<std::mutex>&) { drain_mode_ = true; }

  void grant_next_drain() {
    for (int vid = 0; vid < threads_; ++vid) {
      if (states_[static_cast<std::size_t>(vid)] != ThreadState::kFinished) {
        grant(vid);
        return;
      }
    }
  }

  // ---- DFS over schedules ----

  std::vector<int> schedule_from_path() const {
    std::vector<int> schedule;
    schedule.reserve(path_.size());
    for (const Decision& decision : path_) {
      schedule.push_back(decision.alternatives[decision.chosen]);
    }
    return schedule;
  }

  bool advance_prefix() {
    for (std::size_t i = path_.size(); i-- > 0;) {
      const Decision& decision = path_[i];
      if (decision.chosen + 1 < decision.alternatives.size() &&
          decision.budget_before + 1 <= options_.max_preemptions) {
        prefix_.clear();
        prefix_.reserve(i + 1);
        for (std::size_t j = 0; j < i; ++j) {
          prefix_.push_back(path_[j].chosen);
        }
        prefix_.push_back(decision.chosen + 1);
        return true;
      }
    }
    return false;
  }

  // ---- diagnostics ----

  void record_locked(lint::Severity severity, std::string check,
                     std::string message) {
    lint::Diagnostic diag;
    diag.severity = severity;
    diag.check = std::move(check);
    diag.stage = spec_.name;
    diag.message = std::move(message);
    exec_diags_.push_back(std::move(diag));
  }

  // Driver-side (workers all parked): same append, no lock required.
  void record_unlocked(lint::Severity severity, std::string check,
                       std::string message) {
    record_locked(severity, std::move(check), std::move(message));
  }

  const ScenarioSpec& spec_;
  const CheckOptions options_;
  const int threads_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  std::unique_ptr<ScenarioInstance> instance_;
  std::vector<std::function<void()>> bodies_;
  std::uint64_t exec_epoch_ = 0;
  int token_ = kNoThread;
  std::vector<ThreadState> states_;
  std::vector<std::uint64_t> blocked_stamp_;
  std::vector<std::uint64_t> yield_anchor_;
  std::uint64_t store_stamp_ = 0;
  int finished_count_ = 0;
  bool drain_mode_ = false;
  bool drained_ = false;
  bool exec_over_ = true;
  bool exec_done_ = false;
  bool step_truncated_ = false;
  bool race_reported_ = false;
  bool replay_diverged_ = false;
  std::uint64_t step_ = 0;

  std::vector<Clock> clocks_;
  std::unordered_map<const void*, AtomicLoc> atomic_locs_;
  std::unordered_map<const void*, DataLoc> data_locs_;

  std::vector<Decision> path_;
  std::vector<std::size_t> prefix_;
  int budget_spent_ = 0;
  std::mt19937_64* rng_ = nullptr;

  std::vector<lint::Diagnostic> exec_diags_;
};

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             const CheckOptions& options) {
  Engine engine(spec, options);
  return engine.run();
}

std::string format_schedule(const std::vector<int>& schedule) {
  std::ostringstream out;
  const char* separator = "";
  for (int vid : schedule) {
    out << separator << vid;
    separator = ",";
  }
  return out.str();
}

std::vector<int> parse_schedule(const std::string& text) {
  std::vector<int> schedule;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      schedule.push_back(std::stoi(item));
    }
  }
  return schedule;
}

namespace rt {

void hook_load(const void* location, std::memory_order order) {
  if (Engine* engine = tls_engine) {
    engine->point(PointKind::kLoad, location, order);
  }
}

void hook_store(const void* location, std::memory_order order) {
  if (Engine* engine = tls_engine) {
    engine->point(PointKind::kStore, location, order);
  }
}

void hook_store_committed(const void*) {
  if (Engine* engine = tls_engine) {
    engine->store_committed();
  }
}

void hook_rmw(const void* location, std::memory_order order) {
  if (Engine* engine = tls_engine) {
    engine->point(PointKind::kRmw, location, order);
  }
}

void hook_rmw_failed(const void* location, std::memory_order order) {
  if (Engine* engine = tls_engine) {
    engine->point(PointKind::kRmwFailed, location, order);
  }
}

void hook_data_read(const void* location) {
  if (Engine* engine = tls_engine) {
    engine->data_access(location, false);
  }
}

void hook_data_write(const void* location) {
  if (Engine* engine = tls_engine) {
    engine->data_access(location, true);
  }
}

void hook_spin_yield() {
  if (Engine* engine = tls_engine) {
    engine->spin_yield();
  }
}

bool under_checker() noexcept { return tls_engine != nullptr; }

std::memory_order publish_order() noexcept {
  return g_relaxed_publish.load(std::memory_order_relaxed)
             ? std::memory_order_relaxed
             : std::memory_order_release;
}

void set_relaxed_publish_bug(bool armed) noexcept {
  g_relaxed_publish.store(armed, std::memory_order_relaxed);
}

}  // namespace rt
}  // namespace pw::check
