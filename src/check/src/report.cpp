#include "pw/check/report.hpp"

#include <string>

#include "pw/obs/metrics.hpp"

namespace pw::check {

lint::LintReport to_lint_report(const std::vector<JudgedOutcome>& judged) {
  lint::LintReport report;
  for (const JudgedOutcome& item : judged) {
    const ScenarioOutcome& outcome = item.outcome;
    for (lint::Diagnostic diag : outcome.diagnostics) {
      if (item.expected_violation) {
        // The scenario planted this bug; catching it is the pass. Keep
        // the finding visible but harmless.
        diag.severity = lint::Severity::kInfo;
        diag.message = "expected: " + diag.message;
      }
      report.diagnostics.push_back(std::move(diag));
    }
    if (!item.passed()) {
      lint::Diagnostic verdict;
      verdict.severity = lint::Severity::kError;
      verdict.check = "check.verdict";
      verdict.stage = outcome.scenario;
      verdict.message =
          item.expected_violation
              ? "seeded-bug scenario explored " +
                    std::to_string(outcome.executions) +
                    " schedules without catching the planted violation"
              : "scenario reported a violation";
      verdict.fix_hint = item.expected_violation
                             ? "raise --preemptions or --max-executions, "
                               "or the seeded bug is no longer reachable"
                             : "see the diagnostics above for the "
                               "replayable schedule";
      report.diagnostics.push_back(std::move(verdict));
    }
    lint::Diagnostic explored;
    explored.severity = lint::Severity::kInfo;
    explored.check = "check.explored";
    explored.stage = outcome.scenario;
    explored.message =
        std::to_string(outcome.executions) + " executions, " +
        std::to_string(outcome.decisions) + " decisions, max depth " +
        std::to_string(outcome.max_depth) +
        (outcome.truncated ? " (truncated by budget)" : " (exhausted)");
    report.diagnostics.push_back(std::move(explored));
  }
  return report;
}

void publish(const std::vector<JudgedOutcome>& judged,
             obs::MetricsRegistry& registry, const std::string& prefix) {
  std::size_t failed = 0;
  for (const JudgedOutcome& item : judged) {
    const ScenarioOutcome& outcome = item.outcome;
    const std::string base = prefix + "." + outcome.scenario;
    registry.counter_add(base + ".executions", outcome.executions);
    registry.counter_add(base + ".decisions", outcome.decisions);
    registry.counter_add(base + ".violations",
                         outcome.diagnostics.empty() ? 0 : 1);
    registry.gauge_set(base + ".max_depth",
                       static_cast<double>(outcome.max_depth));
    registry.gauge_set(base + ".passed", item.passed() ? 1.0 : 0.0);
    if (!item.passed()) {
      ++failed;
    }
  }
  registry.counter_add(prefix + ".scenarios", judged.size());
  registry.counter_add(prefix + ".failed", failed);
  registry.gauge_set(prefix + ".passed", failed == 0 ? 1.0 : 0.0);
}

}  // namespace pw::check
