// The named scenario suite. This is the ONE translation unit in the repo
// compiled with PW_CHECK=1: the pw::dataflow transport headers included
// here instantiate as `modelchecked::` templates on the intercepted
// atomics shim, while every other TU (including the rest of pw_check)
// keeps the production `fabric::` instantiations — same source, disjoint
// symbols. The roles below bracket every stream call with History records
// so the oracles (history.cpp) can judge each explored interleaving.

#include "pw/check/scenario.hpp"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "pw/check/runtime.hpp"
#include "pw/check/shim.hpp"
#include "pw/dataflow/stream.hpp"

#if !PW_CHECK_ACTIVE
#error "scenarios.cpp must be compiled with -DPW_CHECK=1"
#endif

namespace pw::check {
namespace {

using dataflow::StreamPolicy;
using dataflow::TryPop;

/// Shared plumbing: a fresh instrumented stream per execution plus
/// recorded-operation helpers for the roles.
class StreamScenario : public ScenarioInstance {
 public:
  StreamScenario(std::size_t capacity, StreamPolicy policy)
      : stream_({.capacity = capacity, .policy = policy}) {}

  void finalize() override {
    // Driver-side (no engine registered): drain what the roles left
    // behind so the conservation oracle can balance its books.
    std::vector<long long> leftover;
    long long value = 0;
    while (stream_.try_pop(value) == TryPop::kValue) {
      leftover.push_back(value);
    }
    history_.set_leftover(std::move(leftover));
  }

  History& history() override { return history_; }
  std::size_t capacity() const override { return stream_.capacity(); }

 protected:
  void do_push(int tid, long long value) {
    const std::size_t op = history_.begin(tid, OpKind::kPush);
    const bool ok = stream_.push(value);
    history_.end_push(op, value, ok);
  }

  void do_try_push_until_accepted(int tid, long long value) {
    for (;;) {
      const std::size_t op = history_.begin(tid, OpKind::kTryPush);
      const bool ok = stream_.try_push(value);
      history_.end_push(op, value, ok);
      if (ok || stream_.closed()) {
        return;
      }
      spin_yield();
    }
  }

  /// Blocking-pop loop until end-of-stream; asserts exhausted() after
  /// unless `expect_exhausted` is off. Scenarios where a push may win the
  /// race against a third-party close (docs/dataflow.md) must turn it
  /// off: the racing element can land *after* pop() observed
  /// closed-and-empty, flipping exhausted() back to false.
  void do_pop_until_eos(int tid, bool expect_exhausted = true) {
    for (;;) {
      const std::size_t op = history_.begin(tid, OpKind::kPop);
      const std::optional<long long> value = stream_.pop();
      history_.end_pop(op, value);
      if (!value.has_value()) {
        if (expect_exhausted) {
          history_.expect(tid, stream_.exhausted(),
                          "exhausted() after pop() returned nullopt");
        }
        return;
      }
    }
  }

  /// TryPop poll loop until kClosed; kEmpty polls park on the scheduler.
  void do_poll_until_closed(int tid) {
    for (;;) {
      long long value = 0;
      const std::size_t op = history_.begin(tid, OpKind::kPop);
      const TryPop status = stream_.try_pop(value);
      history_.end_try_pop(op, static_cast<int>(status), value);
      if (status == TryPop::kClosed) {
        history_.expect(tid, stream_.exhausted(),
                        "exhausted() after TryPop::kClosed");
        return;
      }
      if (status == TryPop::kEmpty) {
        spin_yield();
      }
    }
  }

  void do_close(int tid) {
    const std::size_t op = history_.begin(tid, OpKind::kClose);
    stream_.close();
    history_.end_close(op);
  }

  dataflow::Stream<long long> stream_;
  History history_;
};

// ---- SPSC: blocking relay, wraparound, close-after-producer -------------

class SpscRelay : public StreamScenario {
 public:
  SpscRelay(std::size_t capacity, int count)
      : StreamScenario(capacity, StreamPolicy::kSpsc), count_(count) {}

  std::vector<std::function<void()>> bodies() override {
    return {
        [this] {
          for (int i = 1; i <= count_; ++i) {
            do_push(0, i);
          }
          do_close(0);
        },
        [this] { do_pop_until_eos(1); },
    };
  }

 private:
  int count_;
};

// ---- SPSC: non-blocking flavours ----------------------------------------

class SpscTryFlavors : public StreamScenario {
 public:
  SpscTryFlavors() : StreamScenario(1, StreamPolicy::kSpsc) {}

  std::vector<std::function<void()>> bodies() override {
    return {
        [this] {
          do_try_push_until_accepted(0, 1);
          do_try_push_until_accepted(0, 2);
          do_close(0);
        },
        [this] { do_poll_until_closed(1); },
    };
  }
};

// ---- SPSC: close() from the consumer while the producer is blocked ------

class SpscCloseWhileBlocked : public StreamScenario {
 public:
  SpscCloseWhileBlocked() : StreamScenario(1, StreamPolicy::kSpsc) {}

  std::vector<std::function<void()>> bodies() override {
    return {
        [this] {
          for (int i = 1; i <= 3; ++i) {
            do_push(0, i);
          }
        },
        [this] {
          // Take one element, then pull the rug: the blocked producer
          // must wake with `false`, never an exception or a hang.
          const std::size_t op = history_.begin(1, OpKind::kPop);
          history_.end_pop(op, stream_.pop());
          do_close(1);
          do_pop_until_eos(1, /*expect_exhausted=*/false);
        },
    };
  }

  // A push may legitimately race this third-party close (docs/dataflow.md:
  // "a push that races the close itself may win the race"), so kClosed is
  // not final across the whole execution — and strict linearizability
  // against the strict referee (push false iff closed) does not hold
  // either: the racing push overlaps the close but the consumer's
  // post-close pop pins the close earlier in real time than the slot the
  // push needs. The conservation/FIFO/contract invariants are the oracle
  // here; the strictly-ordered scenarios above keep the lin check.
  bool close_ordered() const override { return false; }
  bool check_linearizability() const override { return false; }
};

// ---- SPSC: push_n/pop_n batches and the partial-tail contract -----------

class SpscBatch : public StreamScenario {
 public:
  SpscBatch() : StreamScenario(2, StreamPolicy::kSpsc) {}

  std::vector<std::function<void()>> bodies() override {
    return {
        [this] {
          long long values[4] = {1, 2, 3, 4};
          const std::size_t op = history_.begin(0, OpKind::kPushN);
          const std::size_t accepted = stream_.push_n(values, 4);
          history_.end_batch(
              op, std::vector<long long>(values, values + accepted));
          do_close(0);
        },
        [this] {
          long long out[8] = {};
          std::size_t op = history_.begin(1, OpKind::kPopN);
          const std::size_t first = stream_.pop_n(out, 8);
          history_.end_batch(op,
                             std::vector<long long>(out, out + first));
          history_.expect(1, first == 4,
                          "pop_n wider than the pack delivers the whole "
                          "partial tail at end-of-stream");
          // The partial tail must arrive exactly once: a second wide pop
          // on the closed stream is empty.
          op = history_.begin(1, OpKind::kPopN);
          const std::size_t second = stream_.pop_n(out, 8);
          history_.end_batch(op,
                             std::vector<long long>(out, out + second));
          history_.expect(1, second == 0,
                          "pop_n after end-of-stream delivers nothing");
        },
    };
  }

  // push_n/pop_n are deliberately not single linearisation points; the
  // conservation + order invariants are the batch oracle.
  bool check_linearizability() const override { return false; }
};

// ---- MPMC: 2 producers x 2 consumers fan-in -----------------------------

class MpmcFanIn : public StreamScenario {
 public:
  MpmcFanIn() : StreamScenario(2, StreamPolicy::kMpmc) {}

  std::vector<std::function<void()>> bodies() override {
    auto producer = [this](int tid, long long base) {
      return [this, tid, base] {
        do_push(tid, base + 1);
        do_push(tid, base + 2);
        // The last producer out closes; acq_rel on the counter orders
        // every accepted push before the close.
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          do_close(tid);
        }
      };
    };
    return {
        producer(0, 100),
        producer(1, 200),
        [this] { do_poll_until_closed(2); },
        [this] { do_poll_until_closed(3); },
    };
  }

 private:
  pw::check::atomic<int> remaining_{2};
};

// ---- Negative: the seeded relaxed-publish ordering bug ------------------

/// Arms rt::set_relaxed_publish_bug so the SPSC tail publish degrades to
/// a relaxed store — exactly the "forgot the release" mistake. The
/// checker must flag the consumer's read of the unpublished element as a
/// happens-before race, with a replayable schedule.
class SpscSeededRelaxedPublish : public SpscRelay {
 public:
  SpscSeededRelaxedPublish() : SpscRelay(2, 2) {
    rt::set_relaxed_publish_bug(true);
  }
  ~SpscSeededRelaxedPublish() override { rt::set_relaxed_publish_bug(false); }
};

// ---- Negative: a wedged producer (deadlock detection) -------------------

class SpscWedged : public StreamScenario {
 public:
  SpscWedged() : StreamScenario(1, StreamPolicy::kSpsc) {}

  std::vector<std::function<void()>> bodies() override {
    return {
        [this] {
          do_push(0, 1);
          do_push(0, 2);  // capacity 1, no consumer: blocks forever
        },
    };
  }
};

template <typename Scenario, typename... Args>
std::function<std::unique_ptr<ScenarioInstance>()> make(Args... args) {
  return [args...] { return std::make_unique<Scenario>(args...); };
}

}  // namespace

const std::vector<ScenarioSpec>& scenarios() {
  static const std::vector<ScenarioSpec> registry = {
      {"spsc.relay",
       "blocking push/pop relay of 3 elements through capacity 2, "
       "producer closes",
       2, false, 2, make<SpscRelay>(std::size_t{2}, 3)},
      {"spsc.wraparound",
       "3 elements through capacity 1: every slot reused, producer "
       "blocks on full",
       2, false, 2, make<SpscRelay>(std::size_t{1}, 3)},
      {"spsc.try_flavors",
       "try_push retry loop vs TryPop poller, kEmpty/kClosed/exhausted "
       "contracts",
       2, false, 2, make<SpscTryFlavors>()},
      {"spsc.close_while_blocked",
       "consumer closes while the producer is blocked on a full ring",
       2, false, 2, make<SpscCloseWhileBlocked>()},
      {"spsc.batch",
       "push_n into capacity 2, wide pop_n: partial tail delivered "
       "exactly once at end-of-stream",
       2, false, 2, make<SpscBatch>()},
      {"mpmc.fanin_2x2",
       "2 producers, 2 consumers on the Vyukov ring; last producer "
       "closes",
       4, false, 2, make<MpmcFanIn>()},
      {"spsc.seeded_relaxed_publish",
       "NEGATIVE: tail published with a relaxed store; the checker must "
       "report the data race",
       2, true, 2, make<SpscSeededRelaxedPublish>()},
      {"spsc.wedged",
       "NEGATIVE: producer overfills a consumerless ring; the checker "
       "must report the deadlock",
       1, true, 2, make<SpscWedged>()},
  };
  return registry;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : scenarios()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace pw::check
