#include "pw/ocl/runtime.hpp"

#include <cstring>
#include <stdexcept>

#include "pw/fault/injector.hpp"

namespace pw::ocl {

namespace {

/// Consults the fault plan for a transfer site: hard kinds throw
/// FaultError (a failed clEnqueueWrite/ReadBuffer), kSpuriousLatency is
/// returned as extra *modelled* seconds added to the command (a slow DMA).
double transfer_fault_latency(const char* site) {
  const auto fault = fault::check(site);
  if (!fault) {
    return 0.0;
  }
  if (fault->kind == fault::FaultKind::kSpuriousLatency ||
      fault->kind == fault::FaultKind::kStreamStall) {
    return fault->latency_s;
  }
  throw fault::FaultError(fault->kind, site);
}

}  // namespace

std::vector<std::size_t> CommandQueue::to_indices(
    const std::vector<Event>& events) const {
  std::vector<std::size_t> indices;
  indices.reserve(events.size());
  for (const Event& event : events) {
    if (!event.valid()) {
      throw std::invalid_argument("CommandQueue: wait on a null event");
    }
    if (event.state_->index >= commands_.size()) {
      throw std::invalid_argument(
          "CommandQueue: wait on an event from another queue or a later "
          "command");
    }
    indices.push_back(event.state_->index);
  }
  return indices;
}

Event CommandQueue::record(xfer::Command command,
                           std::function<void()> action) {
  Event event;
  event.state_ = std::make_shared<Event::State>();
  event.state_->index = commands_.size();
  commands_.push_back(std::move(command));
  actions_.push_back(std::move(action));
  states_.push_back(event.state_);
  return event;
}

Event CommandQueue::enqueue_write(Buffer& destination,
                                  std::span<const double> host,
                                  const std::vector<Event>& wait_for) {
  if (host.size() > destination.count()) {
    throw std::invalid_argument("enqueue_write: source exceeds buffer");
  }
  xfer::Command command;
  command.label = "write";
  command.engine = xfer::Engine::kHostToDevice;
  command.duration_s = static_cast<double>(host.size() * sizeof(double)) /
                           (timing_.h2d_gbps * 1e9) +
                       timing_.dma_setup_s +
                       transfer_fault_latency("ocl.enqueue_write");
  command.depends = to_indices(wait_for);
  auto* dst = &destination;
  return record(std::move(command), [dst, host] {
    std::memcpy(dst->device_view().data(), host.data(),
                host.size() * sizeof(double));
  });
}

Event CommandQueue::enqueue_read(const Buffer& source, std::span<double> host,
                                 const std::vector<Event>& wait_for) {
  if (host.size() > source.count()) {
    throw std::invalid_argument("enqueue_read: request exceeds buffer");
  }
  const xfer::Engine engine = timing_.full_duplex
                                  ? xfer::Engine::kDeviceToHost
                                  : xfer::Engine::kHostToDevice;
  xfer::Command command;
  command.label = "read";
  command.engine = engine;
  command.duration_s = static_cast<double>(host.size() * sizeof(double)) /
                           (timing_.d2h_gbps * 1e9) +
                       timing_.dma_setup_s +
                       transfer_fault_latency("ocl.enqueue_read");
  command.depends = to_indices(wait_for);
  const auto* src = &source;
  return record(std::move(command), [src, host] {
    std::memcpy(host.data(), src->device_view().data(),
                host.size() * sizeof(double));
  });
}

Event CommandQueue::enqueue_kernel(std::string label,
                                   std::function<void()> body,
                                   double modelled_seconds,
                                   const std::vector<Event>& wait_for) {
  if (modelled_seconds < 0.0) {
    throw std::invalid_argument("enqueue_kernel: negative duration");
  }
  xfer::Command command;
  command.label = std::move(label);
  command.engine = xfer::Engine::kKernel;
  command.duration_s = modelled_seconds + timing_.kernel_dispatch_s +
                       transfer_fault_latency("ocl.kernel.enqueue");
  command.depends = to_indices(wait_for);
  // Fault site "ocl.kernel": fires when the kernel *executes* (inside
  // finish()), modelling a hung or faulted compute unit rather than a
  // failed enqueue.
  auto wrapped = [body = std::move(body)] {
    fault::throw_if("ocl.kernel");
    if (body) {
      body();
    }
  };
  return record(std::move(command), std::move(wrapped));
}

Event CommandQueue::enqueue_barrier() {
  xfer::Command command;
  command.label = "barrier";
  command.engine = xfer::Engine::kKernel;
  command.duration_s = 0.0;
  command.depends.resize(commands_.size());
  for (std::size_t i = 0; i < command.depends.size(); ++i) {
    command.depends[i] = i;
  }
  return record(std::move(command), {});
}

Event CommandQueue::enqueue_marker(const std::vector<Event>& wait_for) {
  if (wait_for.empty()) {
    return enqueue_barrier();
  }
  xfer::Command command;
  command.label = "marker";
  command.engine = xfer::Engine::kKernel;
  command.duration_s = 0.0;
  command.depends = to_indices(wait_for);
  return record(std::move(command), {});
}

xfer::Timeline CommandQueue::finish() {
  // Functional pass: commands were enqueued in order and dependencies only
  // point backwards, so in-order execution respects the event graph.
  for (auto& action : actions_) {
    if (action) {
      action();
    }
  }

  // Timing pass.
  xfer::EventScheduler scheduler;
  for (auto& command : commands_) {
    scheduler.add(std::move(command));
  }
  const xfer::Timeline timeline = scheduler.run();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    states_[i]->start = timeline.commands[i].start_s;
    states_[i]->end = timeline.commands[i].end_s;
    states_[i]->resolved = true;
  }

  commands_.clear();
  actions_.clear();
  states_.clear();
  return timeline;
}

}  // namespace pw::ocl
