#include "pw/ocl/host_driver.hpp"

#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "pw/fault/injector.hpp"
#include "pw/kernel/fused.hpp"
#include "pw/kernel/multi_kernel.hpp"
#include "pw/obs/metrics.hpp"
#include "pw/obs/span.hpp"

namespace pw::ocl {

namespace {

/// One X-chunk's worth of staging state: pinned host slabs, device
/// buffers, and the result slabs awaiting scatter.
struct ChunkStage {
  kernel::XRange range;
  grid::GridDims slab_dims;

  // Host-side staging (the paper's pinned transfer buffers).
  std::vector<double> host_u, host_v, host_w;
  std::vector<double> host_su, host_sv, host_sw;

  // Simulated device residency.
  std::unique_ptr<Buffer> dev_u, dev_v, dev_w;
  std::unique_ptr<Buffer> dev_su, dev_sv, dev_sw;

  // Events for the chunk's three phases, kept so the modelled schedule can
  // be exported as spans after finish() resolves it.
  Event first_write, last_write, kernel, first_read, last_read;
};

std::size_t padded_count(const grid::GridDims& dims) {
  return (dims.nx + 2) * (dims.ny + 2) * (dims.nz + 2);
}

/// Copies the padded slab [xr.begin-1, xr.end+1) of `field` into `flat`
/// (local Field3D layout, which is identical plane-for-plane).
void gather_slab(const grid::FieldD& field, kernel::XRange xr,
                 std::vector<double>& flat) {
  const std::size_t plane =
      (field.ny() + 2) * (field.nz() + 2);  // one x-plane incl. halos
  const std::size_t planes = xr.width() + 2;
  flat.resize(planes * plane);
  for (std::size_t p = 0; p < planes; ++p) {
    const auto gi = static_cast<std::ptrdiff_t>(xr.begin + p) - 1;
    const double* src = &field.at(gi, -1, -1);
    std::memcpy(flat.data() + p * plane, src, plane * sizeof(double));
  }
}

/// Scatters a result slab's interior back into the global field.
void scatter_slab(const std::vector<double>& flat, kernel::XRange xr,
                  grid::FieldD& field) {
  const std::size_t plane = (field.ny() + 2) * (field.nz() + 2);
  for (std::size_t p = 0; p < xr.width(); ++p) {
    const auto gi = static_cast<std::ptrdiff_t>(xr.begin + p);
    // Interior plane p+1 of the padded slab.
    const double* src = flat.data() + (p + 1) * plane;
    double* dst = &field.at(gi, -1, -1);
    // Copy only interior j/k rows (skip the slab's halo shell so global
    // halos are preserved).
    for (std::size_t j = 0; j < field.ny(); ++j) {
      const std::size_t row = (j + 1) * (field.nz() + 2) + 1;
      std::memcpy(dst + row, src + row, field.nz() * sizeof(double));
    }
  }
}

}  // namespace

HostDriverResult advect_via_host(const grid::WindState& state,
                                 const advect::PwCoefficients& coefficients,
                                 advect::SourceTerms& out,
                                 const HostDriverConfig& config) {
  const grid::GridDims dims = state.u.dims();
  if (state.u.halo() != 1) {
    throw std::invalid_argument("advect_via_host: expects halo of 1");
  }
  const std::size_t chunk_count =
      config.overlapped ? std::max<std::size_t>(1, config.x_chunks) : 1;
  const auto ranges = kernel::partition_x(dims.nx, chunk_count);

  std::optional<obs::Span> run_span;
  if (config.metrics != nullptr) {
    run_span.emplace(*config.metrics, "host/advect");
  }

  CommandQueue queue(config.timing);
  std::vector<ChunkStage> stages(ranges.size());

  HostDriverResult result;
  result.chunks = ranges.size();

  std::optional<obs::Span> enqueue_span;
  if (config.metrics != nullptr) {
    enqueue_span.emplace(*config.metrics, "enqueue");
  }
  Event previous_kernel;
  for (std::size_t c = 0; c < ranges.size(); ++c) {
    ChunkStage& stage = stages[c];
    stage.range = ranges[c];
    stage.slab_dims = {stage.range.width(), dims.ny, dims.nz};
    const std::size_t count = padded_count(stage.slab_dims);

    gather_slab(state.u, stage.range, stage.host_u);
    gather_slab(state.v, stage.range, stage.host_v);
    gather_slab(state.w, stage.range, stage.host_w);
    stage.host_su.assign(count, 0.0);
    stage.host_sv.assign(count, 0.0);
    stage.host_sw.assign(count, 0.0);

    // Fault site "ocl.alloc": a failed clCreateBuffer for this chunk's
    // device residency (throws FaultError on kAllocFailure et al.).
    fault::throw_if("ocl.alloc");
    stage.dev_u = std::make_unique<Buffer>(count);
    stage.dev_v = std::make_unique<Buffer>(count);
    stage.dev_w = std::make_unique<Buffer>(count);
    stage.dev_su = std::make_unique<Buffer>(count);
    stage.dev_sv = std::make_unique<Buffer>(count);
    stage.dev_sw = std::make_unique<Buffer>(count);

    const Event wu = queue.enqueue_write(*stage.dev_u, stage.host_u);
    const Event wv = queue.enqueue_write(*stage.dev_v, stage.host_v);
    const Event ww = queue.enqueue_write(*stage.dev_w, stage.host_w);
    stage.first_write = wu;
    stage.last_write = ww;
    result.bytes_written += 3 * count * sizeof(double);

    std::vector<Event> kernel_deps{wu, wv, ww};
    if (previous_kernel.valid()) {
      kernel_deps.push_back(previous_kernel);
    }

    const double kernel_seconds =
        config.kernel_time_model ? config.kernel_time_model(stage.slab_dims)
                                 : 0.0;
    ChunkStage* st = &stage;
    const auto* coeffs = &coefficients;
    const auto kcfg = config.kernel;
    const Event kernel_done = queue.enqueue_kernel(
        "advect_chunk_" + std::to_string(c),
        [st, coeffs, kcfg] {
          // Reconstruct the slab as local fields (same memory layout), run
          // the real dataflow datapath, then expose results in the device
          // output buffers.
          grid::WindState slab(st->slab_dims);
          std::memcpy(slab.u.raw().data(), st->dev_u->device_view().data(),
                      st->dev_u->bytes());
          std::memcpy(slab.v.raw().data(), st->dev_v->device_view().data(),
                      st->dev_v->bytes());
          std::memcpy(slab.w.raw().data(), st->dev_w->device_view().data(),
                      st->dev_w->bytes());
          advect::SourceTerms sources(st->slab_dims);
          kernel::run_kernel_fused(slab, *coeffs, sources, kcfg);
          std::memcpy(st->dev_su->device_view().data(),
                      sources.su.raw().data(), st->dev_su->bytes());
          std::memcpy(st->dev_sv->device_view().data(),
                      sources.sv.raw().data(), st->dev_sv->bytes());
          std::memcpy(st->dev_sw->device_view().data(),
                      sources.sw.raw().data(), st->dev_sw->bytes());
        },
        kernel_seconds, kernel_deps);
    previous_kernel = kernel_done;
    stage.kernel = kernel_done;

    stage.first_read =
        queue.enqueue_read(*stage.dev_su, stage.host_su, {kernel_done});
    queue.enqueue_read(*stage.dev_sv, stage.host_sv, {kernel_done});
    stage.last_read =
        queue.enqueue_read(*stage.dev_sw, stage.host_sw, {kernel_done});
    result.bytes_read += 3 * count * sizeof(double);
  }
  enqueue_span.reset();

  {
    std::optional<obs::Span> finish_span;
    if (config.metrics != nullptr) {
      finish_span.emplace(*config.metrics, "finish");
    }
    result.timeline = queue.finish();
  }
  result.seconds = result.timeline.makespan_s;

  {
    std::optional<obs::Span> scatter_span;
    if (config.metrics != nullptr) {
      scatter_span.emplace(*config.metrics, "scatter");
    }
    for (const ChunkStage& stage : stages) {
      scatter_slab(stage.host_su, stage.range, out.su);
      scatter_slab(stage.host_sv, stage.range, out.sv);
      scatter_slab(stage.host_sw, stage.range, out.sw);
    }
  }

  if (config.metrics != nullptr) {
    // Per-chunk phases on the *modelled* device timeline: three writes, a
    // kernel launch, three reads, now that finish() has resolved every
    // event against the schedule.
    for (const ChunkStage& stage : stages) {
      config.metrics->record_span(
          "host/chunk/write", stage.first_write.start_seconds(),
          stage.last_write.end_seconds() - stage.first_write.start_seconds(),
          0, /*modelled=*/true);
      config.metrics->record_span(
          "host/chunk/kernel", stage.kernel.start_seconds(),
          stage.kernel.end_seconds() - stage.kernel.start_seconds(), 0,
          /*modelled=*/true);
      config.metrics->record_span(
          "host/chunk/read", stage.first_read.start_seconds(),
          stage.last_read.end_seconds() - stage.first_read.start_seconds(),
          0, /*modelled=*/true);
    }
    config.metrics->counter_add("host.chunks", result.chunks);
    config.metrics->counter_add("host.bytes_written", result.bytes_written);
    config.metrics->counter_add("host.bytes_read", result.bytes_read);
    config.metrics->gauge_set("host.makespan_s", result.seconds);
    config.metrics->gauge_set("host.overlapped",
                              config.overlapped ? 1.0 : 0.0);
  }
  return result;
}

}  // namespace pw::ocl
