#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pw/xfer/event_graph.hpp"

namespace pw::ocl {

/// A miniature OpenCL-flavoured host runtime over the simulation stack —
/// the programming model the paper adopts on the host for both vendors
/// (and which CUDA streams mirror on the GPU).
///
/// Semantics follow in-order OpenCL command queues with events:
///  * buffers live in simulated device memory;
///  * enqueue_write / enqueue_kernel / enqueue_read return events;
///  * commands wait for their event dependencies and for earlier commands
///    on the same engine (H2D DMA, kernel, D2H DMA);
///  * finish() executes everything functionally *and* produces the
///    modelled timeline (through xfer::EventScheduler), so host code
///    written against this API gets both results and timings.

/// Simulated device-resident buffer of doubles.
class Buffer {
public:
  explicit Buffer(std::size_t count) : storage_(count, 0.0) {}

  std::size_t count() const noexcept { return storage_.size(); }
  std::size_t bytes() const noexcept {
    return storage_.size() * sizeof(double);
  }

  std::span<double> device_view() noexcept { return storage_; }
  std::span<const double> device_view() const noexcept { return storage_; }

private:
  std::vector<double> storage_;
};

/// An OpenCL-event analogue. Copyable; all copies resolve to the modelled
/// schedule once the owning queue's finish() has run.
class Event {
public:
  Event() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  bool resolved() const noexcept { return state_ && state_->resolved; }
  /// Modelled times; only meaningful after CommandQueue::finish().
  double start_seconds() const { return state_ ? state_->start : 0.0; }
  double end_seconds() const { return state_ ? state_->end : 0.0; }

private:
  friend class CommandQueue;
  struct State {
    std::size_t index = 0;
    double start = 0.0;
    double end = 0.0;
    bool resolved = false;
  };
  std::shared_ptr<State> state_;
};

/// Timing personality of the simulated device the queue talks to.
struct DeviceTiming {
  double h2d_gbps = 8.0;
  double d2h_gbps = 8.0;
  bool full_duplex = true;
  double dma_setup_s = 2e-5;
  double kernel_dispatch_s = 5e-5;
};

/// In-order command queue with event dependencies.
class CommandQueue {
public:
  explicit CommandQueue(DeviceTiming timing) : timing_(timing) {}

  /// Host -> device copy. `host` must outlive finish().
  Event enqueue_write(Buffer& destination, std::span<const double> host,
                      const std::vector<Event>& wait_for = {});

  /// Device -> host copy. `host` must outlive finish().
  Event enqueue_read(const Buffer& source, std::span<double> host,
                     const std::vector<Event>& wait_for = {});

  /// Kernel launch: `body` performs the real computation against buffer
  /// device_views; `modelled_seconds` is the simulated execution time.
  Event enqueue_kernel(std::string label, std::function<void()> body,
                       double modelled_seconds,
                       const std::vector<Event>& wait_for = {});

  /// clEnqueueBarrier analogue: a zero-duration command that waits for
  /// every command enqueued so far; later commands can depend on its event
  /// to serialise against the whole queue history.
  Event enqueue_barrier();

  /// clEnqueueMarker analogue: resolves when the listed events have
  /// completed (all prior commands when the list is empty).
  Event enqueue_marker(const std::vector<Event>& wait_for = {});

  /// Executes every enqueued command in dependency order (functionally)
  /// and resolves all events against the modelled timeline. Returns the
  /// timeline; the queue is then empty and reusable.
  xfer::Timeline finish();

  std::size_t pending() const noexcept { return commands_.size(); }

private:
  Event record(xfer::Command command, std::function<void()> action);
  std::vector<std::size_t> to_indices(const std::vector<Event>& events) const;

  DeviceTiming timing_;
  std::vector<xfer::Command> commands_;
  std::vector<std::function<void()>> actions_;
  std::vector<std::shared_ptr<Event::State>> states_;
};

}  // namespace pw::ocl
