#pragma once

#include <functional>

#include "pw/advect/coefficients.hpp"
#include "pw/advect/reference.hpp"
#include "pw/grid/init.hpp"
#include "pw/kernel/config.hpp"
#include "pw/ocl/runtime.hpp"

namespace pw::obs {
class MetricsRegistry;
}

namespace pw::ocl {

/// Host-side driver reproducing the paper's §IV pattern with the OpenCL
/// shim: the domain is chunked in X; for every chunk the three input
/// slabs are written to device buffers, the kernel is launched with an
/// event dependency on those writes (and on the previous chunk's kernel —
/// the device runs one chunk at a time), and the three result slabs are
/// read back dependent on the kernel. All commands are bulk-registered up
/// front; finish() then realises both the computation and the modelled
/// timeline, overlapping transfers with compute exactly as OpenCL events
/// on in-order queues do.
struct HostDriverConfig {
  std::size_t x_chunks = 8;
  bool overlapped = true;  ///< false: one write / one kernel / one read
  DeviceTiming timing;
  kernel::KernelConfig kernel;
  /// Simulated kernel duration for a slab of the given dims (e.g. from
  /// fpga::model_kernel_only). Defaults to zero-time kernels.
  std::function<double(const grid::GridDims&)> kernel_time_model;

  /// Optional metrics sink. A run publishes:
  ///  * wall-clock spans `host/advect` and `host/advect/{enqueue,finish,
  ///    scatter}` (gather is part of the enqueue phase, as in the paper's
  ///    host code);
  ///  * modelled spans `host/chunk/write`, `host/chunk/kernel`,
  ///    `host/chunk/read` (one per X-chunk, timed on the simulated
  ///    device timeline, flagged `modelled`);
  ///  * counters `host.bytes_written`, `host.bytes_read`, `host.chunks`;
  ///  * gauge `host.makespan_s` (modelled end-to-end seconds).
  /// Not owned; must outlive the call.
  obs::MetricsRegistry* metrics = nullptr;
};

struct HostDriverResult {
  xfer::Timeline timeline;
  double seconds = 0.0;
  std::size_t chunks = 0;
  std::size_t bytes_written = 0;
  std::size_t bytes_read = 0;
};

/// Runs a full advection pass through simulated device buffers. The
/// results land in `out` and are bit-identical to the direct kernel run
/// (tested); the returned timeline carries the modelled schedule.
HostDriverResult advect_via_host(const grid::WindState& state,
                                 const advect::PwCoefficients& coefficients,
                                 advect::SourceTerms& out,
                                 const HostDriverConfig& config);

}  // namespace pw::ocl
