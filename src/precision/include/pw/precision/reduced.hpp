#pragma once

#include <cstddef>
#include <string>

#include "pw/advect/coefficients.hpp"
#include "pw/advect/reference.hpp"
#include "pw/grid/init.hpp"
#include "pw/kernel/config.hpp"

namespace pw::precision {

/// Error of a reduced-precision pass against the double-precision kernel.
struct ErrorStats {
  double max_abs = 0.0;
  double max_rel = 0.0;   ///< relative to max(|ref|, 1e-30)
  double rms = 0.0;
  std::size_t cells = 0;
};

/// Which reduced representation to evaluate (paper §V future work).
enum class Representation {
  kFloat32,   ///< IEEE single precision
  kFixedQ43,  ///< 64-bit fixed point, 43 fractional bits
  kFixedQ32,  ///< 64-bit fixed point, 32 fractional bits
};

std::string to_string(Representation representation);

/// Runs the full dataflow datapath (shift buffers + advection) in the
/// reduced representation and compares every source term against the
/// double-precision kernel. Inputs and coefficients are converted once at
/// the read stage, results converted back at the write stage — exactly
/// where an FPGA kernel would place the casts.
ErrorStats evaluate(Representation representation,
                    const grid::WindState& state,
                    const advect::PwCoefficients& coefficients,
                    const kernel::KernelConfig& config = {});

/// Optionally returns the reduced-precision results themselves (converted
/// to double) for downstream inspection.
ErrorStats evaluate(Representation representation,
                    const grid::WindState& state,
                    const advect::PwCoefficients& coefficients,
                    const kernel::KernelConfig& config,
                    advect::SourceTerms* reduced_out);

/// On-chip memory factor of a representation relative to double (0.5 for
/// float32, 1.0 for the 64-bit fixed formats).
double storage_factor(Representation representation);

}  // namespace pw::precision
