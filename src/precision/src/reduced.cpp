#include "pw/precision/reduced.hpp"

#include <cmath>
#include <stdexcept>

#include "pw/hls/fixed_point.hpp"
#include "pw/hls/numeric_cast.hpp"
#include "pw/kernel/chunking.hpp"
#include "pw/kernel/fused.hpp"
#include "pw/kernel/shift_buffer.hpp"

namespace pw::precision {

namespace {

using hls::from_value;
using hls::to_value;

template <typename T>
T convert(double value) {
  return to_value<T>(value);
}

template <typename T>
double back(T value) {
  return from_value<T>(value);
}

/// The fused datapath generic over the value type: identical structure to
/// kernel::run_kernel_fused, with casts at the read and write stages only.
template <typename T>
void run_reduced(const grid::WindState& state,
                 const advect::PwCoefficients& c,
                 const kernel::KernelConfig& config,
                 advect::SourceTerms& out) {
  const grid::GridDims dims = state.u.dims();
  const kernel::ChunkPlan plan(dims, config.chunk_y);
  const auto nz = dims.nz;

  const T tcx = convert<T>(c.tcx);
  const T tcy = convert<T>(c.tcy);
  std::vector<advect::ZCoeffsT<T>> zc(nz);
  for (std::size_t k = 0; k < nz; ++k) {
    zc[k] = {convert<T>(c.tzc1[k]), convert<T>(c.tzc2[k]),
             convert<T>(c.tzd1[k]), convert<T>(c.tzd2[k])};
  }

  for (const kernel::YChunk& chunk : plan.chunks()) {
    kernel::BasicTripleShiftBuffer<T> buffer(chunk.padded_width(), nz + 2);
    const auto x_lo = -1;
    const auto x_hi = static_cast<std::ptrdiff_t>(dims.nx) + 1;
    const auto j_lo = static_cast<std::ptrdiff_t>(chunk.j_begin) - 1;
    const auto j_hi = static_cast<std::ptrdiff_t>(chunk.j_end) + 1;

    for (std::ptrdiff_t i = x_lo; i < x_hi; ++i) {
      for (std::ptrdiff_t j = j_lo; j < j_hi; ++j) {
        for (std::ptrdiff_t k = -1; k <= static_cast<std::ptrdiff_t>(nz);
             ++k) {
          auto emitted = buffer.push(convert<T>(state.u.at(i, j, k)),
                                     convert<T>(state.v.at(i, j, k)),
                                     convert<T>(state.w.at(i, j, k)));
          if (!emitted) {
            continue;
          }
          const auto gi = x_lo + static_cast<std::ptrdiff_t>(emitted->ci);
          const auto gj = j_lo + static_cast<std::ptrdiff_t>(emitted->cj);
          const auto gk = static_cast<std::ptrdiff_t>(emitted->ck) - 1;
          const bool top = gk == static_cast<std::ptrdiff_t>(nz) - 1;
          const auto sources = advect::advect_cell<T>(
              emitted->stencils, tcx, tcy,
              zc[static_cast<std::size_t>(gk)], top);
          out.su.at(gi, gj, gk) = back<T>(sources.su);
          out.sv.at(gi, gj, gk) = back<T>(sources.sv);
          out.sw.at(gi, gj, gk) = back<T>(sources.sw);
        }
      }
    }
  }
}

void accumulate(const grid::FieldD& reference, const grid::FieldD& reduced,
                ErrorStats& stats, double& sum_sq) {
  for (std::size_t i = 0; i < reference.nx(); ++i) {
    for (std::size_t j = 0; j < reference.ny(); ++j) {
      for (std::size_t k = 0; k < reference.nz(); ++k) {
        const auto ii = static_cast<std::ptrdiff_t>(i);
        const auto jj = static_cast<std::ptrdiff_t>(j);
        const auto kk = static_cast<std::ptrdiff_t>(k);
        const double ref = reference.at(ii, jj, kk);
        const double got = reduced.at(ii, jj, kk);
        const double abs_err = std::fabs(ref - got);
        stats.max_abs = std::max(stats.max_abs, abs_err);
        stats.max_rel = std::max(
            stats.max_rel, abs_err / std::max(std::fabs(ref), 1e-30));
        sum_sq += abs_err * abs_err;
        ++stats.cells;
      }
    }
  }
}

}  // namespace

std::string to_string(Representation representation) {
  switch (representation) {
    case Representation::kFloat32:
      return "float32";
    case Representation::kFixedQ43:
      return "fixed Q20.43";
    case Representation::kFixedQ32:
      return "fixed Q31.32";
  }
  return "?";
}

double storage_factor(Representation representation) {
  return representation == Representation::kFloat32 ? 0.5 : 1.0;
}

ErrorStats evaluate(Representation representation,
                    const grid::WindState& state,
                    const advect::PwCoefficients& coefficients,
                    const kernel::KernelConfig& config,
                    advect::SourceTerms* reduced_out) {
  const grid::GridDims dims = state.u.dims();

  advect::SourceTerms reference(dims);
  kernel::run_kernel_fused(state, coefficients, reference, config);

  advect::SourceTerms reduced(dims);
  switch (representation) {
    case Representation::kFloat32:
      run_reduced<float>(state, coefficients, config, reduced);
      break;
    case Representation::kFixedQ43:
      run_reduced<hls::FixedQ43>(state, coefficients, config, reduced);
      break;
    case Representation::kFixedQ32:
      run_reduced<hls::FixedQ32>(state, coefficients, config, reduced);
      break;
  }

  ErrorStats stats;
  double sum_sq = 0.0;
  accumulate(reference.su, reduced.su, stats, sum_sq);
  accumulate(reference.sv, reduced.sv, stats, sum_sq);
  accumulate(reference.sw, reduced.sw, stats, sum_sq);
  stats.rms = stats.cells == 0
                  ? 0.0
                  : std::sqrt(sum_sq / static_cast<double>(stats.cells));
  if (reduced_out != nullptr) {
    *reduced_out = std::move(reduced);
  }
  return stats;
}

ErrorStats evaluate(Representation representation,
                    const grid::WindState& state,
                    const advect::PwCoefficients& coefficients,
                    const kernel::KernelConfig& config) {
  return evaluate(representation, state, coefficients, config, nullptr);
}

}  // namespace pw::precision
