#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace pw::hls {

/// Signed Q-format fixed-point value in a 64-bit word with `FracBits`
/// fractional bits — the `ap_fixed`-style arithmetic of the paper's §V
/// future-work item ("exploring the role of reduced precision and fixed
/// point arithmetic"). Multiplication uses a 128-bit intermediate with
/// truncation toward negative infinity (the FPGA-cheap rounding mode).
template <int FracBits>
class Fixed {
  static_assert(FracBits > 0 && FracBits < 63);

public:
  static constexpr int kFracBits = FracBits;
  static constexpr int kIntBits = 63 - FracBits;

  constexpr Fixed() = default;

  /// Converts from double (saturating at the representable range).
  static Fixed from_double(double value) {
    const double scaled = value * scale();
    constexpr double max_raw =
        static_cast<double>(std::numeric_limits<std::int64_t>::max());
    if (scaled >= max_raw) {
      return from_raw(std::numeric_limits<std::int64_t>::max());
    }
    if (scaled <= -max_raw) {
      return from_raw(std::numeric_limits<std::int64_t>::min());
    }
    return from_raw(static_cast<std::int64_t>(std::llround(scaled)));
  }

  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  double to_double() const { return static_cast<double>(raw_) / scale(); }
  std::int64_t raw() const noexcept { return raw_; }

  /// Smallest representable step.
  static double epsilon() { return 1.0 / scale(); }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw(a.raw_ - b.raw_);
  }
  constexpr Fixed operator-() const { return from_raw(-raw_); }

  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const __int128 wide =
        static_cast<__int128>(a.raw_) * static_cast<__int128>(b.raw_);
    return from_raw(static_cast<std::int64_t>(wide >> FracBits));
  }

  Fixed& operator+=(Fixed other) {
    raw_ += other.raw_;
    return *this;
  }
  Fixed& operator-=(Fixed other) {
    raw_ -= other.raw_;
    return *this;
  }

  friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

private:
  static constexpr double scale() {
    return static_cast<double>(std::int64_t{1} << FracBits);
  }
  std::int64_t raw_ = 0;
};

/// Q20.43: +/-2^20 range with ~1.1e-13 resolution — comfortably covers
/// atmospheric wind speeds and the PW scheme's intermediate products.
using FixedQ43 = Fixed<43>;

/// Q31.32: the classic 32.32 split; coarser (2.3e-10) but cheap to route.
using FixedQ32 = Fixed<32>;

}  // namespace pw::hls
