#pragma once

/// HLS pragma annotations.
///
/// On a real toolchain these lines are `#pragma HLS ...` (Vitis) or
/// attribute/qualifier spellings (Quartus OpenCL). Here they expand to
/// nothing but keep the kernel sources carrying the same tuning intent the
/// paper describes, in greppable form — the documentation value of pragmas
/// without a synthesiser. Each macro names the vendor construct it stands
/// for.

// Vitis HLS style ---------------------------------------------------------

/// #pragma HLS dataflow — every function in scope runs concurrently.
#define PW_HLS_DATAFLOW

/// #pragma HLS pipeline II=<n>
#define PW_HLS_PIPELINE_II(n)

/// #pragma HLS array_partition variable=<v> <kind> factor=<f> dim=<d>
#define PW_HLS_ARRAY_PARTITION(v, kind, f, d)

/// #pragma HLS bind_storage variable=<v> type=ram_2p impl=<bram|uram>
#define PW_HLS_BIND_STORAGE(v, impl)

/// #pragma HLS interface m_axi port=<p> bundle=<b> — external port mapping
/// (the paper binds bundles across all HBM2 banks).
#define PW_HLS_INTERFACE_M_AXI(p, bundle)

/// #pragma HLS stream variable=<v> depth=<d>
#define PW_HLS_STREAM(v, d)

// Intel OpenCL style ------------------------------------------------------

/// __attribute__((numbanks(n), bankwidth(w))) — the banking qualifiers the
/// paper tried before splitting the dimension-3 arrays manually (§III.B).
#define PW_INTEL_NUMBANKS(n, w)

/// channel declaration depth hint.
#define PW_INTEL_CHANNEL_DEPTH(d)

/// #pragma ivdep — assert no loop-carried memory dependency.
#define PW_INTEL_IVDEP
