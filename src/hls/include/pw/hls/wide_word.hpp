#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>

namespace pw::hls {

/// A fixed-width external-memory word holding `Lanes` doubles. The paper's
/// Xilinx implementation packs accesses to 512 bits (8 doubles) following
/// Vitis best practice; the count of partially filled words models the
/// wasted bandwidth of unaligned chunk faces.
template <std::size_t Lanes>
struct WideWord {
  static_assert(Lanes > 0);
  static constexpr std::size_t kLanes = Lanes;
  static constexpr std::size_t kBits = Lanes * 64;

  std::array<double, Lanes> lane{};
  /// Number of valid lanes (< Lanes only for the final word of a burst).
  std::size_t valid = Lanes;

  double& operator[](std::size_t i) { return lane[i]; }
  double operator[](std::size_t i) const { return lane[i]; }
};

/// 512-bit word, the Alveo external-access width used in the paper.
using Word512 = WideWord<8>;

/// Packs a contiguous run of doubles into wide words; the last word may be
/// partially valid. Returns the number of words written.
template <std::size_t Lanes>
std::size_t pack_words(std::span<const double> values,
                       std::span<WideWord<Lanes>> out) {
  const std::size_t words = (values.size() + Lanes - 1) / Lanes;
  if (out.size() < words) {
    throw std::invalid_argument("pack_words: output too small");
  }
  for (std::size_t w = 0; w < words; ++w) {
    WideWord<Lanes>& word = out[w];
    word.valid = std::min(Lanes, values.size() - w * Lanes);
    for (std::size_t l = 0; l < Lanes; ++l) {
      word.lane[l] = l < word.valid ? values[w * Lanes + l] : 0.0;
    }
  }
  return words;
}

/// Unpacks wide words back into a contiguous run. Returns doubles written.
template <std::size_t Lanes>
std::size_t unpack_words(std::span<const WideWord<Lanes>> words,
                         std::span<double> out) {
  std::size_t n = 0;
  for (const auto& word : words) {
    if (word.valid > Lanes) {
      throw std::invalid_argument("unpack_words: corrupt word");
    }
    if (out.size() < n + word.valid) {
      throw std::invalid_argument("unpack_words: output too small");
    }
    for (std::size_t l = 0; l < word.valid; ++l) {
      out[n + l] = word.lane[l];
    }
    n += word.valid;
  }
  return n;
}

/// Number of wide words needed to carry `count` doubles.
template <std::size_t Lanes>
constexpr std::size_t words_for(std::size_t count) {
  return (count + Lanes - 1) / Lanes;
}

}  // namespace pw::hls
