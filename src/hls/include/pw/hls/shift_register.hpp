#pragma once

#include <array>
#include <cstddef>

namespace pw::hls {

/// A length-N shift register of T. HLS tools map small fixed arrays with
/// shift access patterns onto registers (the paper notes the 3x3 arrays of
/// the shift buffer are implemented as registers by both Vitis and Quartus).
template <typename T, std::size_t N>
class ShiftRegister {
public:
  static_assert(N > 0);

  /// Shifts every element one place towards index N-1 and inserts `value`
  /// at index 0. Returns the element shifted out.
  T shift_in(T value) {
    T out = data_[N - 1];
    for (std::size_t i = N - 1; i > 0; --i) {
      data_[i] = data_[i - 1];
    }
    data_[0] = value;
    return out;
  }

  const T& operator[](std::size_t i) const { return data_[i]; }
  T& operator[](std::size_t i) { return data_[i]; }

  static constexpr std::size_t size() { return N; }

private:
  std::array<T, N> data_{};
};

}  // namespace pw::hls
