#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "pw/dataflow/streams.hpp"

namespace pw::hls {

/// Xilinx-HLS-flavoured stream facade: the `hls::stream<T>` API surface
/// (read/write/empty) over the library's lock-free Stream. Used by the
/// Xilinx-style kernel frontend so that frontend reads like Vitis HLS
/// code. HLS streams are strictly point-to-point, so the default SPSC
/// policy of StreamOptions is always the right one here; name your
/// streams — `XilinxStream<T> raster({.capacity = depth, .name =
/// "xilinx.raster"})` — so lint, obs and fault attribution can see them.
template <typename T>
class XilinxStream {
public:
  XilinxStream() : XilinxStream(dataflow::StreamOptions{}) {}

  explicit XilinxStream(dataflow::StreamOptions options)
      : stream_(std::move(options)) {}

  /// Blocking write; a value arriving after close() is dropped (the
  /// Stream close-while-blocked contract — real HLS streams cannot be
  /// closed, so a correct design never hits this).
  void write(T value) {
    if (!stream_.push(std::move(value))) {
      // Closed early: the consumer has gone away; nothing to do.
    }
  }

  /// Blocking burst write of `values[0, count)` — the software analogue
  /// of an AXI burst; one fault consultation and (on the SPSC ring) far
  /// fewer cursor publishes than `count` scalar writes.
  void write_n(T* values, std::size_t count) {
    stream_.push_n(values, count);
  }

  /// Blocking read; throws once end-of-stream is reached (HLS streams have
  /// no EOS — our frontends send exact element counts so this never fires
  /// in a correct design).
  T read() {
    auto value = stream_.pop();
    if (!value) {
      throw std::logic_error("XilinxStream::read past end of stream");
    }
    return std::move(*value);
  }

  /// Blocking burst read into `out[0, count)`; returns elements delivered
  /// (== count unless end-of-stream arrived first).
  std::size_t read_n(T* out, std::size_t count) {
    return stream_.pop_n(out, count);
  }

  bool read_nb(T& out) {
    return stream_.try_pop(out) == dataflow::TryPop::kValue;
  }

  bool empty() const { return stream_.size() == 0; }
  std::size_t size() const { return stream_.size(); }
  std::size_t capacity() const { return stream_.capacity(); }
  bool closed() const { return stream_.closed(); }
  const std::string& name() const { return stream_.name(); }

  void close() { stream_.close(); }

  dataflow::Stream<T>& raw() { return stream_; }
  const dataflow::Stream<T>& raw() const { return stream_; }

private:
  dataflow::Stream<T> stream_;
};

/// Intel-OpenCL-flavoured channel facade: `read_channel_intel` /
/// `write_channel_intel` free functions over a channel object. Used by the
/// Intel-style kernel frontend so that frontend reads like Quartus OpenCL.
template <typename T>
class IntelChannel {
public:
  IntelChannel() : IntelChannel(dataflow::StreamOptions{}) {}

  explicit IntelChannel(dataflow::StreamOptions options)
      : stream_(std::move(options)) {}

  dataflow::Stream<T>& raw() { return stream_; }
  const dataflow::Stream<T>& raw() const { return stream_; }

  std::size_t size() const { return stream_.size(); }
  std::size_t capacity() const { return stream_.capacity(); }
  bool closed() const { return stream_.closed(); }
  const std::string& name() const { return stream_.name(); }

private:
  dataflow::Stream<T> stream_;
};

template <typename T>
void write_channel_intel(IntelChannel<T>& channel, T value) {
  if (!channel.raw().push(std::move(value))) {
    // Channel closed early: the value is dropped (see Stream contract).
  }
}

template <typename T>
T read_channel_intel(IntelChannel<T>& channel) {
  auto value = channel.raw().pop();
  if (!value) {
    throw std::logic_error("read_channel_intel past end of channel");
  }
  return std::move(*value);
}

template <typename T>
bool read_channel_nb_intel(IntelChannel<T>& channel, T& out) {
  return channel.raw().try_pop(out) == dataflow::TryPop::kValue;
}

}  // namespace pw::hls
