#pragma once

#include <optional>

#include "pw/dataflow/stream.hpp"

namespace pw::hls {

/// Xilinx-HLS-flavoured stream facade: the `hls::stream<T>` API surface
/// (read/write/empty) over the library's blocking Stream. Used by the
/// Xilinx-style kernel frontend so that frontend reads like Vitis HLS code.
template <typename T>
class XilinxStream {
public:
  explicit XilinxStream(std::size_t depth = 16) : stream_(depth) {}

  /// Blocking write; a value arriving after close() is dropped (the
  /// Stream close-while-blocked contract — real HLS streams cannot be
  /// closed, so a correct design never hits this).
  void write(T value) {
    if (!stream_.push(std::move(value))) {
      // Closed early: the consumer has gone away; nothing to do.
    }
  }

  /// Blocking read; throws once end-of-stream is reached (HLS streams have
  /// no EOS — our frontends send exact element counts so this never fires
  /// in a correct design).
  T read() {
    auto value = stream_.pop();
    if (!value) {
      throw std::logic_error("XilinxStream::read past end of stream");
    }
    return std::move(*value);
  }

  bool read_nb(T& out) {
    auto value = stream_.try_pop();
    if (!value) {
      return false;
    }
    out = std::move(*value);
    return true;
  }

  bool empty() const { return stream_.size() == 0; }

  void close() { stream_.close(); }

private:
  dataflow::Stream<T> stream_;
};

/// Intel-OpenCL-flavoured channel facade: `read_channel_intel` /
/// `write_channel_intel` free functions over a channel object. Used by the
/// Intel-style kernel frontend so that frontend reads like Quartus OpenCL.
template <typename T>
class IntelChannel {
public:
  explicit IntelChannel(std::size_t depth = 16) : stream_(depth) {}

  dataflow::Stream<T>& raw() { return stream_; }

private:
  dataflow::Stream<T> stream_;
};

template <typename T>
void write_channel_intel(IntelChannel<T>& channel, T value) {
  if (!channel.raw().push(std::move(value))) {
    // Channel closed early: the value is dropped (see Stream contract).
  }
}

template <typename T>
T read_channel_intel(IntelChannel<T>& channel) {
  auto value = channel.raw().pop();
  if (!value) {
    throw std::logic_error("read_channel_intel past end of channel");
  }
  return std::move(*value);
}

template <typename T>
bool read_channel_nb_intel(IntelChannel<T>& channel, T& out) {
  auto value = channel.raw().try_pop();
  if (!value) {
    return false;
  }
  out = std::move(*value);
  return true;
}

}  // namespace pw::hls
