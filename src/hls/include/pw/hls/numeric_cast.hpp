#pragma once

#include <type_traits>

namespace pw::hls {

/// Uniform conversions between the host's double fields and a kernel's
/// internal value type (double, float, or a Fixed<> format) — the casts an
/// FPGA kernel performs at its load and store units.
template <typename T>
T to_value(double value) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(value);
  } else {
    return T::from_double(value);
  }
}

template <typename T>
double from_value(T value) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<double>(value);
  } else {
    return value.to_double();
  }
}

}  // namespace pw::hls
