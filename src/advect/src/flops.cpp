#include "pw/advect/flops.hpp"

namespace pw::advect {

std::uint64_t total_flops(const grid::GridDims& dims) {
  const std::uint64_t columns =
      static_cast<std::uint64_t>(dims.nx) * dims.ny;
  const std::uint64_t per_column =
      kFlopsPerCell * (dims.nz - 1) + kFlopsPerCellTop;
  return columns * per_column;
}

double flops_per_cycle(std::size_t nz) {
  return (static_cast<double>(kFlopsPerCell) * (static_cast<double>(nz) - 1.0) +
          static_cast<double>(kFlopsPerCellTop)) /
         static_cast<double>(nz);
}

}  // namespace pw::advect
