#include "pw/advect/coefficients.hpp"

#include <stdexcept>

namespace pw::advect {

PwCoefficients PwCoefficients::from_geometry(const grid::Geometry& geometry) {
  const auto& vertical = geometry.vertical;
  const std::size_t nz = geometry.dims.nz;
  if (vertical.nz() != nz) {
    throw std::invalid_argument(
        "PwCoefficients: vertical grid does not match dims.nz");
  }
  if (geometry.dx <= 0.0 || geometry.dy <= 0.0) {
    throw std::invalid_argument("PwCoefficients: non-positive spacing");
  }

  PwCoefficients c;
  c.tcx = 0.25 / geometry.dx;
  c.tcy = 0.25 / geometry.dy;
  c.tzc1.resize(nz);
  c.tzc2.resize(nz);
  c.tzd1.resize(nz);
  c.tzd2.resize(nz);
  for (std::size_t k = 0; k < nz; ++k) {
    const double rdz = 0.25 / vertical.dz(k);
    // Density weighting follows MONC's anelastic formulation: the U/V terms
    // are weighted by rho at the w-levels bounding cell k, normalised by the
    // p-level density; the W term is the converse. rho below the surface is
    // taken equal to rho(0).
    const double rho_below = k == 0 ? vertical.rho(0) : vertical.rho(k - 1);
    c.tzc1[k] = rdz * rho_below / vertical.rhon(k);
    c.tzc2[k] = rdz * vertical.rho(k) / vertical.rhon(k);
    c.tzd1[k] = rdz * vertical.rhon(k) / vertical.rho(k);
    c.tzd2[k] = rdz * (k + 1 < nz ? vertical.rhon(k + 1) : vertical.rhon(k)) /
                vertical.rho(k);
  }
  return c;
}

}  // namespace pw::advect
