#include "pw/advect/cpu_baseline.hpp"

#include "pw/advect/flops.hpp"
#include "pw/advect/scheme.hpp"
#include "pw/util/parallel_for.hpp"
#include "pw/util/timer.hpp"

namespace pw::advect {

namespace {

void advect_x_range(const grid::WindState& state, const PwCoefficients& c,
                    SourceTerms& out, std::size_t x_begin, std::size_t x_end) {
  const auto ny = static_cast<std::ptrdiff_t>(state.u.ny());
  const auto nz = static_cast<std::ptrdiff_t>(state.u.nz());
  const auto& u = state.u;
  const auto& v = state.v;
  const auto& w = state.w;

  for (std::size_t iu = x_begin; iu < x_end; ++iu) {
    const auto i = static_cast<std::ptrdiff_t>(iu);
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t k = 0; k < nz; ++k) {
        const bool top = k == nz - 1;
        const ZCoeffs z{c.tzc1[static_cast<std::size_t>(k)],
                        c.tzc2[static_cast<std::size_t>(k)],
                        c.tzd1[static_cast<std::size_t>(k)],
                        c.tzd2[static_cast<std::size_t>(k)]};

        double su =
            c.tcx * (u.at(i - 1, j, k) * (u.at(i, j, k) + u.at(i - 1, j, k)) -
                     u.at(i + 1, j, k) * (u.at(i, j, k) + u.at(i + 1, j, k)));
        su += c.tcy *
              (u.at(i, j - 1, k) * (v.at(i, j - 1, k) + v.at(i + 1, j - 1, k)) -
               u.at(i, j + 1, k) * (v.at(i, j, k) + v.at(i + 1, j, k)));
        if (top) {
          su += z.tzc1 * u.at(i, j, k - 1) *
                (w.at(i, j, k - 1) + w.at(i + 1, j, k - 1));
        } else {
          su += z.tzc1 * u.at(i, j, k - 1) *
                    (w.at(i, j, k - 1) + w.at(i + 1, j, k - 1)) -
                z.tzc2 * u.at(i, j, k + 1) *
                    (w.at(i, j, k) + w.at(i + 1, j, k));
        }
        out.su.at(i, j, k) = su;

        double sv =
            c.tcx *
            (v.at(i - 1, j, k) * (u.at(i - 1, j, k) + u.at(i - 1, j + 1, k)) -
             v.at(i + 1, j, k) * (u.at(i, j, k) + u.at(i, j + 1, k)));
        sv += c.tcy * (v.at(i, j - 1, k) * (v.at(i, j, k) + v.at(i, j - 1, k)) -
                       v.at(i, j + 1, k) * (v.at(i, j, k) + v.at(i, j + 1, k)));
        if (top) {
          sv += z.tzc1 * v.at(i, j, k - 1) *
                (w.at(i, j, k - 1) + w.at(i, j + 1, k - 1));
        } else {
          sv += z.tzc1 * v.at(i, j, k - 1) *
                    (w.at(i, j, k - 1) + w.at(i, j + 1, k - 1)) -
                z.tzc2 * v.at(i, j, k + 1) *
                    (w.at(i, j, k) + w.at(i, j + 1, k));
        }
        out.sv.at(i, j, k) = sv;

        double sw =
            c.tcx *
            (w.at(i - 1, j, k) * (u.at(i - 1, j, k) + u.at(i - 1, j, k + 1)) -
             w.at(i + 1, j, k) * (u.at(i, j, k) + u.at(i, j, k + 1)));
        sw += c.tcy *
              (w.at(i, j - 1, k) * (v.at(i, j - 1, k) + v.at(i, j - 1, k + 1)) -
               w.at(i, j + 1, k) * (v.at(i, j, k) + v.at(i, j, k + 1)));
        sw += z.tzd1 * w.at(i, j, k - 1) * (w.at(i, j, k) + w.at(i, j, k - 1)) -
              z.tzd2 * w.at(i, j, k + 1) * (w.at(i, j, k) + w.at(i, j, k + 1));
        out.sw.at(i, j, k) = sw;
      }
    }
  }
}

}  // namespace

CpuRunStats CpuAdvectorBaseline::run(const grid::WindState& state,
                                     const PwCoefficients& c,
                                     SourceTerms& out) const {
  util::WallTimer timer;
  util::parallel_for(*pool_, 0, state.u.nx(), [&](std::size_t lo,
                                                  std::size_t hi) {
    advect_x_range(state, c, out, lo, hi);
  });
  CpuRunStats stats;
  stats.seconds = timer.seconds();
  stats.threads = pool_->size();
  stats.gflops =
      static_cast<double>(total_flops(state.u.dims())) / stats.seconds / 1e9;
  return stats;
}

}  // namespace pw::advect
