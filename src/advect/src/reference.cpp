#include "pw/advect/reference.hpp"

#include <stdexcept>

#include "pw/advect/scheme.hpp"

namespace pw::advect {

namespace {

void check_shapes(const grid::WindState& state, const PwCoefficients& c,
                  const SourceTerms& out) {
  if (!state.u.same_shape(out.su) || !state.u.same_shape(state.v) ||
      !state.u.same_shape(state.w) || !state.u.same_shape(out.sv) ||
      !state.u.same_shape(out.sw)) {
    throw std::invalid_argument("advect: field shape mismatch");
  }
  if (c.tzc1.size() != state.u.nz()) {
    throw std::invalid_argument("advect: coefficient levels != nz");
  }
  if (state.u.halo() < 1) {
    throw std::invalid_argument("advect: PW scheme needs a halo of >= 1");
  }
}

ZCoeffs z_coeffs(const PwCoefficients& c, std::size_t k) {
  return {c.tzc1[k], c.tzc2[k], c.tzd1[k], c.tzd2[k]};
}

void gather(const grid::FieldD& f, std::ptrdiff_t i, std::ptrdiff_t j,
            std::ptrdiff_t k, Stencil27& s) {
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        s.at(dx, dy, dz) = f.at(i + dx, j + dy, k + dz);
      }
    }
  }
}

}  // namespace

void advect_reference(const grid::WindState& state, const PwCoefficients& c,
                      SourceTerms& out) {
  check_shapes(state, c, out);
  const auto nx = static_cast<std::ptrdiff_t>(state.u.nx());
  const auto ny = static_cast<std::ptrdiff_t>(state.u.ny());
  const auto nz = static_cast<std::ptrdiff_t>(state.u.nz());
  const auto& u = state.u;
  const auto& v = state.v;
  const auto& w = state.w;

  for (std::ptrdiff_t i = 0; i < nx; ++i) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t k = 0; k < nz; ++k) {
        const bool top = k == nz - 1;
        const ZCoeffs z = z_coeffs(c, static_cast<std::size_t>(k));

        double su =
            c.tcx * (u.at(i - 1, j, k) * (u.at(i, j, k) + u.at(i - 1, j, k)) -
                     u.at(i + 1, j, k) * (u.at(i, j, k) + u.at(i + 1, j, k)));
        su += c.tcy *
              (u.at(i, j - 1, k) * (v.at(i, j - 1, k) + v.at(i + 1, j - 1, k)) -
               u.at(i, j + 1, k) * (v.at(i, j, k) + v.at(i + 1, j, k)));
        if (top) {
          su += z.tzc1 * u.at(i, j, k - 1) *
                (w.at(i, j, k - 1) + w.at(i + 1, j, k - 1));
        } else {
          su += z.tzc1 * u.at(i, j, k - 1) *
                    (w.at(i, j, k - 1) + w.at(i + 1, j, k - 1)) -
                z.tzc2 * u.at(i, j, k + 1) *
                    (w.at(i, j, k) + w.at(i + 1, j, k));
        }
        out.su.at(i, j, k) = su;

        double sv =
            c.tcx *
            (v.at(i - 1, j, k) * (u.at(i - 1, j, k) + u.at(i - 1, j + 1, k)) -
             v.at(i + 1, j, k) * (u.at(i, j, k) + u.at(i, j + 1, k)));
        sv += c.tcy *
              (v.at(i, j - 1, k) * (v.at(i, j, k) + v.at(i, j - 1, k)) -
               v.at(i, j + 1, k) * (v.at(i, j, k) + v.at(i, j + 1, k)));
        if (top) {
          sv += z.tzc1 * v.at(i, j, k - 1) *
                (w.at(i, j, k - 1) + w.at(i, j + 1, k - 1));
        } else {
          sv += z.tzc1 * v.at(i, j, k - 1) *
                    (w.at(i, j, k - 1) + w.at(i, j + 1, k - 1)) -
                z.tzc2 * v.at(i, j, k + 1) *
                    (w.at(i, j, k) + w.at(i, j + 1, k));
        }
        out.sv.at(i, j, k) = sv;

        double sw =
            c.tcx *
            (w.at(i - 1, j, k) * (u.at(i - 1, j, k) + u.at(i - 1, j, k + 1)) -
             w.at(i + 1, j, k) * (u.at(i, j, k) + u.at(i, j, k + 1)));
        sw += c.tcy *
              (w.at(i, j - 1, k) * (v.at(i, j - 1, k) + v.at(i, j - 1, k + 1)) -
               w.at(i, j + 1, k) * (v.at(i, j, k) + v.at(i, j, k + 1)));
        sw += z.tzd1 * w.at(i, j, k - 1) *
                  (w.at(i, j, k) + w.at(i, j, k - 1)) -
              z.tzd2 * w.at(i, j, k + 1) * (w.at(i, j, k) + w.at(i, j, k + 1));
        out.sw.at(i, j, k) = sw;
      }
    }
  }
}

void advect_reference_stencil(const grid::WindState& state,
                              const PwCoefficients& c, SourceTerms& out) {
  check_shapes(state, c, out);
  const auto nx = static_cast<std::ptrdiff_t>(state.u.nx());
  const auto ny = static_cast<std::ptrdiff_t>(state.u.ny());
  const auto nz = static_cast<std::ptrdiff_t>(state.u.nz());

  CellStencils s;
  for (std::ptrdiff_t i = 0; i < nx; ++i) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t k = 0; k < nz; ++k) {
        gather(state.u, i, j, k, s.u);
        gather(state.v, i, j, k, s.v);
        gather(state.w, i, j, k, s.w);
        const bool top = k == nz - 1;
        const CellSources src =
            advect_cell(s, c.tcx, c.tcy, z_coeffs(c, static_cast<std::size_t>(k)), top);
        out.su.at(i, j, k) = src.su;
        out.sv.at(i, j, k) = src.sv;
        out.sw.at(i, j, k) = src.sw;
      }
    }
  }
}

}  // namespace pw::advect
