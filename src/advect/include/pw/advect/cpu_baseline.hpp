#pragma once

#include "pw/advect/coefficients.hpp"
#include "pw/advect/reference.hpp"
#include "pw/util/thread_pool.hpp"

namespace pw::advect {

/// Timing breakdown of a baseline run.
struct CpuRunStats {
  double seconds = 0.0;
  double gflops = 0.0;
  std::size_t threads = 1;
};

/// Threaded CPU baseline: the paper's "24 core Xeon" comparator. Work is
/// decomposed over the slowest (x) dimension across a thread pool; the inner
/// z loop is written over contiguous memory so the compiler can vectorise.
/// Produces results bit-identical to advect_reference (each cell's
/// arithmetic is the same inlined scheme).
class CpuAdvectorBaseline {
public:
  explicit CpuAdvectorBaseline(util::ThreadPool& pool) : pool_(&pool) {}

  CpuRunStats run(const grid::WindState& state, const PwCoefficients& c,
                  SourceTerms& out) const;

private:
  util::ThreadPool* pool_;
};

}  // namespace pw::advect
