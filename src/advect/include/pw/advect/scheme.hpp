#pragma once

#include <cstddef>

namespace pw::advect {

/// The 27-point neighbourhood of one grid cell for one field. Indexed
/// [x][y][z] with 0 = minus-one, 1 = centre, 2 = plus-one — exactly the
/// layout the 3D shift buffer (paper Fig. 3) emits each cycle.
///
/// Generic over the value type: `double` is the paper's production
/// configuration; `float` and fixed-point types serve the reduced-precision
/// study of the paper's future-work section (§V).
template <typename T>
struct Stencil27T {
  T v[3][3][3] = {};

  T& at(int dx, int dy, int dz) { return v[dx + 1][dy + 1][dz + 1]; }
  T at(int dx, int dy, int dz) const { return v[dx + 1][dy + 1][dz + 1]; }
  T centre() const { return v[1][1][1]; }
};
using Stencil27 = Stencil27T<double>;

/// The three stencils an advection stage consumes per cell (the output of
/// the replicate stages in the paper's Fig. 2).
template <typename T>
struct CellStencilsT {
  Stencil27T<T> u;
  Stencil27T<T> v;
  Stencil27T<T> w;
};
using CellStencils = CellStencilsT<double>;

/// Per-level z coefficients for one cell.
template <typename T>
struct ZCoeffsT {
  T tzc1{};
  T tzc2{};
  T tzd1{};
  T tzd2{};
};
using ZCoeffs = ZCoeffsT<double>;

// The three source-term cell updates below are the *single* definition of
// the PW arithmetic in this repository. The scalar reference, the threaded
// CPU baseline, both vendor-style dataflow kernels and the reduced-
// precision variants all inline these functions, so every implementation
// at a given precision is bit-identical by construction (the property the
// functional tests assert).
//
// `top` marks the column-top cell: the U and V terms drop their tzc2
// contribution there (paper Listing 1), reducing the per-cell FLOP count
// from 63 to 55. W keeps its full form; its k+1 neighbour reads the zeroed
// above-lid halo.

/// U source term: 21 FLOPs (17 at the column top).
template <typename T>
T advect_u_cell(const CellStencilsT<T>& s, T tcx, T tcy,
                const ZCoeffsT<T>& z, bool top) {
  const auto& u = s.u;
  const auto& v = s.v;
  const auto& w = s.w;
  T su = tcx * (u.at(-1, 0, 0) * (u.at(0, 0, 0) + u.at(-1, 0, 0)) -
                u.at(+1, 0, 0) * (u.at(0, 0, 0) + u.at(+1, 0, 0)));
  su += tcy * (u.at(0, -1, 0) * (v.at(0, -1, 0) + v.at(+1, -1, 0)) -
               u.at(0, +1, 0) * (v.at(0, 0, 0) + v.at(+1, 0, 0)));
  if (top) {
    su += z.tzc1 * u.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(+1, 0, -1));
  } else {
    su += z.tzc1 * u.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(+1, 0, -1)) -
          z.tzc2 * u.at(0, 0, +1) * (w.at(0, 0, 0) + w.at(+1, 0, 0));
  }
  return su;
}

/// V source term: 21 FLOPs (17 at the column top).
template <typename T>
T advect_v_cell(const CellStencilsT<T>& s, T tcx, T tcy,
                const ZCoeffsT<T>& z, bool top) {
  const auto& u = s.u;
  const auto& v = s.v;
  const auto& w = s.w;
  T sv = tcx * (v.at(-1, 0, 0) * (u.at(-1, 0, 0) + u.at(-1, +1, 0)) -
                v.at(+1, 0, 0) * (u.at(0, 0, 0) + u.at(0, +1, 0)));
  sv += tcy * (v.at(0, -1, 0) * (v.at(0, 0, 0) + v.at(0, -1, 0)) -
               v.at(0, +1, 0) * (v.at(0, 0, 0) + v.at(0, +1, 0)));
  if (top) {
    sv += z.tzc1 * v.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(0, +1, -1));
  } else {
    sv += z.tzc1 * v.at(0, 0, -1) * (w.at(0, 0, -1) + w.at(0, +1, -1)) -
          z.tzc2 * v.at(0, 0, +1) * (w.at(0, 0, 0) + w.at(0, +1, 0));
  }
  return sv;
}

/// W source term: 21 FLOPs at every level (above-lid neighbours are zero).
template <typename T>
T advect_w_cell(const CellStencilsT<T>& s, T tcx, T tcy,
                const ZCoeffsT<T>& z) {
  const auto& u = s.u;
  const auto& v = s.v;
  const auto& w = s.w;
  T sw = tcx * (w.at(-1, 0, 0) * (u.at(-1, 0, 0) + u.at(-1, 0, +1)) -
                w.at(+1, 0, 0) * (u.at(0, 0, 0) + u.at(0, 0, +1)));
  sw += tcy * (w.at(0, -1, 0) * (v.at(0, -1, 0) + v.at(0, -1, +1)) -
               w.at(0, +1, 0) * (v.at(0, 0, 0) + v.at(0, 0, +1)));
  sw += z.tzd1 * w.at(0, 0, -1) * (w.at(0, 0, 0) + w.at(0, 0, -1)) -
        z.tzd2 * w.at(0, 0, +1) * (w.at(0, 0, 0) + w.at(0, 0, +1));
  return sw;
}

/// All three source terms for one cell (the work of the paper's three
/// concurrent advection stages in one call).
template <typename T>
struct CellSourcesT {
  T su{};
  T sv{};
  T sw{};
};
using CellSources = CellSourcesT<double>;

template <typename T>
CellSourcesT<T> advect_cell(const CellStencilsT<T>& s, T tcx, T tcy,
                            const ZCoeffsT<T>& z, bool top) {
  return {advect_u_cell(s, tcx, tcy, z, top),
          advect_v_cell(s, tcx, tcy, z, top), advect_w_cell(s, tcx, tcy, z)};
}

}  // namespace pw::advect
