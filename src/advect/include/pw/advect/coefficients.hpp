#pragma once

#include <vector>

#include "pw/grid/geometry.hpp"

namespace pw::advect {

/// Precomputed coefficients of the Piacsek–Williams advection scheme
/// (Piacsek & Williams 1970; as used by MONC).
///
/// tcx/tcy are the horizontal quarter-reciprocal spacings; the z-direction
/// coefficients fold in the anelastic reference density profile and the
/// (possibly stretched) level spacing:
///   tzc1[k], tzc2[k] — used by the U and V source terms,
///   tzd1[k], tzd2[k] — used by the W source term.
/// With unit density and uniform dz they all reduce to 0.25/dz.
struct PwCoefficients {
  double tcx = 0.0;
  double tcy = 0.0;
  std::vector<double> tzc1;
  std::vector<double> tzc2;
  std::vector<double> tzd1;
  std::vector<double> tzd2;

  static PwCoefficients from_geometry(const grid::Geometry& geometry);
};

}  // namespace pw::advect
