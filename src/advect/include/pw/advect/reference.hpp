#pragma once

#include "pw/advect/coefficients.hpp"
#include "pw/grid/field3d.hpp"
#include "pw/grid/init.hpp"

namespace pw::advect {

/// The computed source terms (tendencies) for the three wind fields.
struct SourceTerms {
  grid::FieldD su;
  grid::FieldD sv;
  grid::FieldD sw;

  explicit SourceTerms(grid::GridDims dims, std::size_t halo = 1)
      : su(dims, halo), sv(dims, halo), sw(dims, halo) {}
};

/// Straightforward serial translation of the MONC Fortran PW advection
/// (paper Listing 1, extended to all three fields). This is the functional
/// oracle every other implementation is tested against.
void advect_reference(const grid::WindState& state, const PwCoefficients& c,
                      SourceTerms& out);

/// As advect_reference but gathering each cell's full 27-point stencils
/// first (the access pattern the shift buffer produces). Exists to prove
/// the stencil formulation is bit-identical to direct field indexing.
void advect_reference_stencil(const grid::WindState& state,
                              const PwCoefficients& c, SourceTerms& out);

}  // namespace pw::advect
