#pragma once

#include <cstdint>

#include "pw/grid/geometry.hpp"

namespace pw::advect {

/// Double-precision operations per grid cell (paper §III): 63 usually — 21
/// per field — dropping to 55 at the column top where U and V lose their
/// tzc2 term (4 FLOPs each).
inline constexpr std::uint64_t kFlopsPerCell = 63;
inline constexpr std::uint64_t kFlopsPerCellTop = 55;

/// FLOPs performed for one cell at level k of an nz-level column.
constexpr std::uint64_t flops_per_cell(std::size_t k, std::size_t nz) {
  return k + 1 == nz ? kFlopsPerCellTop : kFlopsPerCell;
}

/// Total FLOPs for one full advection of a grid.
std::uint64_t total_flops(const grid::GridDims& dims);

/// Average FLOPs issued per streamed cell, i.e. per pipeline cycle at
/// initiation interval 1: (63*(nz-1) + 55) / nz.
double flops_per_cycle(std::size_t nz);

}  // namespace pw::advect
