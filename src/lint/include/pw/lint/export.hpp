#pragma once

#include <string>

#include "pw/lint/diagnostic.hpp"

namespace pw::obs {
class MetricsRegistry;
}

namespace pw::lint {

/// Serialises a report as a JSON object:
///   {"errors": N, "warnings": N, "predicted_peak_fraction": f,
///    "diagnostics": [{severity, check, stage, stream, message,
///                     fix_hint}, ...]}
/// Uses the same escaping rules as the pw::obs exporter so tooling can
/// treat LINT_*.json and BENCH_*.json uniformly.
std::string to_json(const LintReport& report);

/// Publishes a report into a MetricsRegistry (counters
/// `<prefix>.errors` / `.warnings` / `.diagnostics`, gauges `<prefix>.passed`
/// and `<prefix>.predicted_peak_fraction`, one `<prefix>/<check>` span per
/// diagnostic) so lint results flow through the existing pw::obs JSON/CSV
/// exporters and BENCH-style artefact validation.
void publish(const LintReport& report, obs::MetricsRegistry& registry,
             const std::string& prefix = "lint");

}  // namespace pw::lint
