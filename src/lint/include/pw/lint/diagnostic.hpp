#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pw::lint {

/// How bad a finding is. Errors make a pipeline rejectable (an enforcing
/// caller refuses to run it); warnings flag throughput or robustness
/// hazards that still execute correctly; infos carry derived facts (e.g.
/// the predicted fraction of peak) worth surfacing alongside real findings.
enum class Severity {
  kInfo,
  kWarning,
  kError,
};

const char* to_string(Severity severity);

/// One finding of the static verifier. `check` is the dotted rule id
/// ("connectivity.double_writer"); `stage` / `stream` attribute the finding
/// to graph entities (empty when not applicable). `fix_hint` says what to
/// change, not just what is wrong — the difference between a verifier and
/// an error message.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string check;
  std::string stage;
  std::string stream;
  std::string message;
  std::string fix_hint;
};

/// Everything one lint pass produced. `predicted_peak_fraction` is the
/// throughput check's estimate of achieved/theoretical II=1 throughput
/// (1.0 for a clean II=1 chain), the static cross-check of
/// pw::fpga::perf_model's dynamic prediction.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  double predicted_peak_fraction = 1.0;

  std::size_t errors() const noexcept;
  std::size_t warnings() const noexcept;
  bool passed() const noexcept { return errors() == 0; }

  /// Human-readable multi-line rendering ("pwlint: 2 errors ...").
  std::string summary() const;
};

}  // namespace pw::lint
