#pragma once

#include "pw/lint/diagnostic.hpp"

namespace pw::lint {

/// Admission-time policy: how strict a gatekeeper (pw::serve admission, a
/// CI gate) is about lint findings. The dataflow engines' LintPolicy
/// decides whether checks run at all; this decides which severities are
/// fatal once they have.
struct AdmissionPolicy {
  /// Findings at or above this severity reject the request. kError is the
  /// verifier's contract ("would not run correctly"); kWarning turns
  /// throughput/robustness hazards into rejections too.
  Severity reject_at = Severity::kError;
};

/// True when `report` passes under `policy` — i.e. no diagnostic reaches
/// policy.reject_at. With the default policy this is report.passed().
inline bool admits(const LintReport& report, const AdmissionPolicy& policy) {
  for (const Diagnostic& diagnostic : report.diagnostics) {
    if (static_cast<int>(diagnostic.severity) >=
        static_cast<int>(policy.reject_at)) {
      return false;
    }
  }
  return true;
}

/// The first rejecting diagnostic under `policy`; nullptr when admitted.
/// The serve layer uses it to attribute a typed kRejectedByLint error.
inline const Diagnostic* first_rejection(const LintReport& report,
                                         const AdmissionPolicy& policy) {
  for (const Diagnostic& diagnostic : report.diagnostics) {
    if (static_cast<int>(diagnostic.severity) >=
        static_cast<int>(policy.reject_at)) {
      return &diagnostic;
    }
  }
  return nullptr;
}

}  // namespace pw::lint
