#pragma once

#include <string>
#include <vector>

#include "pw/lint/diagnostic.hpp"
#include "pw/lint/graph.hpp"

namespace pw::lint {

/// Tuning knobs of the check battery. Defaults encode the paper's design
/// goals: every chain targets II=1 and external-memory bursts shorter than
/// 8 columns measurably hurt bandwidth (Fig. 4 discussion).
struct LintOptions {
  /// The initiation interval the design is expected to sustain; stages
  /// above it are reported by the throughput check (error when
  /// `enforce_target_ii`, warning otherwise).
  unsigned target_ii = 1;
  bool enforce_target_ii = false;

  /// Interior chunk width below which the shift-buffer check warns about
  /// short external-memory bursts.
  std::size_t min_chunk_width = 8;

  /// Online logical cores available to the pipeline's threads; 0 (the
  /// default) skips the placement.oversubscribed check — only the
  /// execution layer knows the real machine, a bare graph does not.
  int available_cores = 0;

  /// Check ids ("deadlock.reconverge_capacity") or id prefixes
  /// ("deadlock.") to suppress — the documented escape hatch when a
  /// pipeline is intentionally odd. Suppressed findings are dropped, and
  /// one info diagnostic records that suppression happened.
  std::vector<std::string> suppress;
};

/// Runs the full static battery over `graph`:
///
///   connectivity.*  — unbound producer/consumer, double writer/reader,
///                     orphan stages
///   deadlock.*      — cycles in the stage graph; fan-out/reconverge
///                     capacity (total FIFO slack along each reconverging
///                     path must cover the path-latency skew — the Fig. 2
///                     replicate -> advect U/V/W -> write condition)
///   throughput.*    — max II along every source->sink path, reported as
///                     a predicted fraction of the II=1 peak
///   shift_buffer.*  — halo width vs. padded-face geometry, chunk-width
///                     burst warning
///
/// Never runs the pipeline; a report with passed() == false means the
/// graph should be rejected before the first simulated or real cycle.
LintReport run_checks(const PipelineGraph& graph,
                      const LintOptions& options = {});

}  // namespace pw::lint
