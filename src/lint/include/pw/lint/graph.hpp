#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace pw::lint {

/// Shift-buffer geometry attached to a stage so the access-pattern checks
/// can reason about halo width vs. chunk depth (paper Fig. 3/4) without
/// seeing the buffer implementation.
struct ShiftBufferGeometry {
  std::size_t ny_padded = 0;  ///< chunk face width incl. halo
  std::size_t nz_padded = 0;  ///< chunk face height incl. halo
  std::size_t halo = 1;       ///< stencil reach per side (1 for 27-point)
};

/// A stage (node) of the declared dataflow graph. `latency` is the fill
/// delay in cycles between the stage's first consume and first produce
/// (a shift buffer holds ~2 planes before the first stencil emerges);
/// `ii` is the initiation interval (cycles between accepted inputs).
/// `detached` marks housekeeping stages that legitimately own no streams
/// (e.g. the cycle-sim clock/rate-limiter stage) so the orphan check
/// skips them.
struct StageNode {
  std::string name;
  unsigned ii = 1;
  std::uint64_t latency = 0;
  bool detached = false;
  std::optional<ShiftBufferGeometry> shift_buffer;
  /// Logical core this stage's thread is pinned to (PlacementSpec), -1
  /// when unpinned. Annotated by the execution layer so the placement
  /// check can spot stages time-sharing a core while others sit free.
  int pinned_core = -1;
};

/// Live state of one stream, sampled through an optional probe when the
/// graph is attached to a running engine — lets deadlock diagnosis name
/// the blocking FIFO (full/empty + depth), not just the stalled stages.
struct StreamProbe {
  std::size_t size = 0;
  std::size_t capacity = 0;
  bool eos = false;
};

/// A stream (edge) of the graph: a bounded FIFO with a declared depth and
/// the stages bound to its ends. Well-formed pipelines bind exactly one
/// producer and one consumer (HLS streams are point-to-point); the vectors
/// exist so the connectivity check can report double bindings.
struct StreamEdge {
  std::string name;
  std::size_t depth = 0;
  std::vector<int> producers;
  std::vector<int> consumers;
  /// Optional live-state sampler (see StreamProbe); ignored by the static
  /// checks, used by runtime deadlock diagnosis.
  std::function<StreamProbe()> probe;
};

/// The declared stream-connectivity graph of one pipeline: stages as
/// nodes, streams as edges. Purely descriptive — building one never
/// touches the pipeline it describes, which is what makes the checks
/// static. Indices returned by add_* are stable handles.
class PipelineGraph {
 public:
  int add_stage(StageNode stage);
  int add_stage(std::string name, unsigned ii = 1, std::uint64_t latency = 0);
  int add_stream(std::string name, std::size_t depth);

  void bind_producer(int stream, int stage);
  void bind_consumer(int stream, int stage);
  void set_probe(int stream, std::function<StreamProbe()> probe);
  /// Records where stage `stage`'s thread is pinned (-1 = unpinned); the
  /// execution layer calls this so lint sees real placement, not intent.
  void set_pinned_core(int stage, int core);

  const std::vector<StageNode>& stages() const noexcept { return stages_; }
  const std::vector<StreamEdge>& streams() const noexcept { return streams_; }

  /// Index of the named stage / stream, -1 when absent.
  int stage_index(const std::string& name) const noexcept;
  int stream_index(const std::string& name) const noexcept;

  /// Streams produced / consumed by stage `s`.
  std::vector<int> out_streams(int s) const;
  std::vector<int> in_streams(int s) const;

  /// Downstream stage adjacency (producer -> every consumer of each of its
  /// output streams), the view the cycle and path checks walk.
  std::vector<int> successors(int s) const;

  bool empty() const noexcept {
    return stages_.empty() && streams_.empty();
  }

 private:
  void check_stream(int stream) const;
  void check_stage(int stage) const;

  std::vector<StageNode> stages_;
  std::vector<StreamEdge> streams_;
};

}  // namespace pw::lint
