#include "pw/lint/export.hpp"

#include <sstream>

#include "pw/obs/export.hpp"
#include "pw/obs/metrics.hpp"

namespace pw::lint {

std::string to_json(const LintReport& report) {
  std::string out = "{\n";
  out += "  \"errors\": " + std::to_string(report.errors()) + ",\n";
  out += "  \"warnings\": " + std::to_string(report.warnings()) + ",\n";
  {
    std::ostringstream os;
    os.precision(17);
    os << report.predicted_peak_fraction;
    out += "  \"predicted_peak_fraction\": " + os.str() + ",\n";
  }
  out += "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"severity\": ";
    obs::append_json_string(out, to_string(d.severity));
    out += ", \"check\": ";
    obs::append_json_string(out, d.check);
    out += ", \"stage\": ";
    obs::append_json_string(out, d.stage);
    out += ", \"stream\": ";
    obs::append_json_string(out, d.stream);
    out += ", \"message\": ";
    obs::append_json_string(out, d.message);
    out += ", \"fix_hint\": ";
    obs::append_json_string(out, d.fix_hint);
    out += '}';
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void publish(const LintReport& report, obs::MetricsRegistry& registry,
             const std::string& prefix) {
  registry.counter_add(prefix + ".diagnostics", report.diagnostics.size());
  registry.counter_add(prefix + ".errors", report.errors());
  registry.counter_add(prefix + ".warnings", report.warnings());
  registry.gauge_set(prefix + ".passed", report.passed() ? 1.0 : 0.0);
  registry.gauge_set(prefix + ".predicted_peak_fraction",
                     report.predicted_peak_fraction);
  // One zero-length span per diagnostic: the path carries check + entity so
  // the obs JSON/CSV exporters surface individual findings, not just
  // counts.
  for (const Diagnostic& d : report.diagnostics) {
    std::string path = prefix;
    path += '/';
    path += to_string(d.severity);
    path += '/';
    path += d.check;
    if (!d.stage.empty()) {
      path += '/';
      path += d.stage;
    }
    if (!d.stream.empty()) {
      path += '/';
      path += d.stream;
    }
    registry.record_span(std::move(path), registry.now_s(), 0.0, 0,
                         /*modelled=*/true);
  }
}

}  // namespace pw::lint
