#include "pw/lint/graph.hpp"

#include <stdexcept>

namespace pw::lint {

int PipelineGraph::add_stage(StageNode stage) {
  stages_.push_back(std::move(stage));
  return static_cast<int>(stages_.size()) - 1;
}

int PipelineGraph::add_stage(std::string name, unsigned ii,
                             std::uint64_t latency) {
  StageNode node;
  node.name = std::move(name);
  node.ii = ii == 0 ? 1 : ii;
  node.latency = latency;
  return add_stage(std::move(node));
}

int PipelineGraph::add_stream(std::string name, std::size_t depth) {
  StreamEdge edge;
  edge.name = std::move(name);
  edge.depth = depth;
  streams_.push_back(std::move(edge));
  return static_cast<int>(streams_.size()) - 1;
}

void PipelineGraph::check_stream(int stream) const {
  if (stream < 0 || stream >= static_cast<int>(streams_.size())) {
    throw std::out_of_range("PipelineGraph: bad stream index");
  }
}

void PipelineGraph::check_stage(int stage) const {
  if (stage < 0 || stage >= static_cast<int>(stages_.size())) {
    throw std::out_of_range("PipelineGraph: bad stage index");
  }
}

void PipelineGraph::bind_producer(int stream, int stage) {
  check_stream(stream);
  check_stage(stage);
  streams_[static_cast<std::size_t>(stream)].producers.push_back(stage);
}

void PipelineGraph::bind_consumer(int stream, int stage) {
  check_stream(stream);
  check_stage(stage);
  streams_[static_cast<std::size_t>(stream)].consumers.push_back(stage);
}

void PipelineGraph::set_probe(int stream, std::function<StreamProbe()> probe) {
  check_stream(stream);
  streams_[static_cast<std::size_t>(stream)].probe = std::move(probe);
}

void PipelineGraph::set_pinned_core(int stage, int core) {
  check_stage(stage);
  stages_[static_cast<std::size_t>(stage)].pinned_core = core;
}

int PipelineGraph::stage_index(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int PipelineGraph::stream_index(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> PipelineGraph::out_streams(int s) const {
  check_stage(s);
  std::vector<int> result;
  for (std::size_t e = 0; e < streams_.size(); ++e) {
    for (int producer : streams_[e].producers) {
      if (producer == s) {
        result.push_back(static_cast<int>(e));
        break;
      }
    }
  }
  return result;
}

std::vector<int> PipelineGraph::in_streams(int s) const {
  check_stage(s);
  std::vector<int> result;
  for (std::size_t e = 0; e < streams_.size(); ++e) {
    for (int consumer : streams_[e].consumers) {
      if (consumer == s) {
        result.push_back(static_cast<int>(e));
        break;
      }
    }
  }
  return result;
}

std::vector<int> PipelineGraph::successors(int s) const {
  std::vector<int> result;
  for (int e : out_streams(s)) {
    for (int consumer : streams_[static_cast<std::size_t>(e)].consumers) {
      bool seen = false;
      for (int r : result) {
        seen = seen || r == consumer;
      }
      if (!seen) {
        result.push_back(consumer);
      }
    }
  }
  return result;
}

}  // namespace pw::lint
