#include "pw/lint/checks.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace pw::lint {

namespace {

std::string stage_name(const PipelineGraph& g, int s) {
  if (s < 0 || s >= static_cast<int>(g.stages().size())) {
    return "?";
  }
  return g.stages()[static_cast<std::size_t>(s)].name;
}

void add(LintReport& report, Severity severity, std::string check,
         std::string stage, std::string stream, std::string message,
         std::string fix_hint) {
  Diagnostic d;
  d.severity = severity;
  d.check = std::move(check);
  d.stage = std::move(stage);
  d.stream = std::move(stream);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  report.diagnostics.push_back(std::move(d));
}

// --- connectivity ------------------------------------------------------

void check_connectivity(const PipelineGraph& g, LintReport& report) {
  for (const StreamEdge& e : g.streams()) {
    if (e.producers.empty()) {
      add(report, Severity::kError, "connectivity.unbound_producer", "",
          e.name, "stream has no producer bound: consumers would block on an "
          "eternally empty FIFO",
          "bind exactly one producing stage to '" + e.name + "'");
    }
    if (e.consumers.empty()) {
      add(report, Severity::kError, "connectivity.unbound_consumer", "",
          e.name, "stream has no consumer bound: the producer fills a FIFO "
          "nothing drains, then stalls the whole chain",
          "bind exactly one consuming stage to '" + e.name + "'");
    }
    if (e.producers.size() > 1) {
      std::ostringstream msg;
      msg << "stream has " << e.producers.size() << " writers (";
      for (std::size_t i = 0; i < e.producers.size(); ++i) {
        msg << (i ? ", " : "") << stage_name(g, e.producers[i]);
      }
      msg << "): HLS streams are point-to-point, interleaving is "
             "non-deterministic";
      add(report, Severity::kError, "connectivity.double_writer",
          stage_name(g, e.producers[1]), e.name, msg.str(),
          "give each writer its own stream and merge explicitly");
    }
    if (e.consumers.size() > 1) {
      std::ostringstream msg;
      msg << "stream has " << e.consumers.size() << " readers (";
      for (std::size_t i = 0; i < e.consumers.size(); ++i) {
        msg << (i ? ", " : "") << stage_name(g, e.consumers[i]);
      }
      msg << "): each value reaches only one of them";
      add(report, Severity::kError, "connectivity.double_reader",
          stage_name(g, e.consumers[1]), e.name, msg.str(),
          "insert an explicit replicate stage (Fig. 2) instead of sharing "
          "the stream");
    }
  }

  for (std::size_t s = 0; s < g.stages().size(); ++s) {
    const StageNode& node = g.stages()[s];
    if (node.detached) {
      continue;
    }
    const bool no_in = g.in_streams(static_cast<int>(s)).empty();
    const bool no_out = g.out_streams(static_cast<int>(s)).empty();
    if (no_in && no_out && !g.streams().empty()) {
      add(report, Severity::kError, "connectivity.orphan_stage", node.name,
          "", "stage is bound to no stream at all: it can neither receive "
          "nor contribute work",
          "wire the stage into the pipeline or mark it detached "
          "(housekeeping stages only)");
    }
  }
}

// --- deadlock: cycles --------------------------------------------------

bool find_cycle(const PipelineGraph& g, int s, std::vector<int>& colour,
                std::vector<int>& path) {
  colour[static_cast<std::size_t>(s)] = 1;
  path.push_back(s);
  for (int next : g.successors(s)) {
    if (colour[static_cast<std::size_t>(next)] == 1) {
      path.push_back(next);
      return true;
    }
    if (colour[static_cast<std::size_t>(next)] == 0 &&
        find_cycle(g, next, colour, path)) {
      return true;
    }
  }
  colour[static_cast<std::size_t>(s)] = 2;
  path.pop_back();
  return false;
}

/// Returns true when the stage graph is acyclic (required by the capacity
/// and throughput checks, which walk it as a DAG).
bool check_cycles(const PipelineGraph& g, LintReport& report) {
  std::vector<int> colour(g.stages().size(), 0);
  for (std::size_t s = 0; s < g.stages().size(); ++s) {
    if (colour[s] != 0) {
      continue;
    }
    std::vector<int> path;
    if (find_cycle(g, static_cast<int>(s), colour, path)) {
      std::ostringstream msg;
      msg << "stage graph contains a cycle: ";
      for (std::size_t i = 0; i < path.size(); ++i) {
        msg << (i ? " -> " : "") << stage_name(g, path[i]);
      }
      msg << "; a blocking-FIFO loop with no initial tokens deadlocks on "
             "the first beat";
      add(report, Severity::kError, "deadlock.cycle",
          stage_name(g, path.back()), "", msg.str(),
          "break the feedback edge or prime it with enough initial tokens "
          "outside the dataflow region");
      return false;
    }
  }
  return true;
}

// --- deadlock: fan-out / reconverge capacity ---------------------------

struct PathInfo {
  std::vector<int> stages;   ///< fork .. join inclusive
  std::vector<int> streams;  ///< edges walked
  std::uint64_t latency = 0; ///< fill delay of interior stages
  std::size_t capacity = 0;  ///< total FIFO slots along the path
};

void enumerate_paths(const PipelineGraph& g, int at, int join,
                     PathInfo& current, std::vector<PathInfo>& out) {
  if (at == join) {
    out.push_back(current);
    return;
  }
  for (int e : g.out_streams(at)) {
    const StreamEdge& edge = g.streams()[static_cast<std::size_t>(e)];
    for (int next : edge.consumers) {
      bool revisit = false;
      for (int s : current.stages) {
        revisit = revisit || s == next;
      }
      if (revisit) {
        continue;
      }
      const StageNode& node = g.stages()[static_cast<std::size_t>(next)];
      PathInfo extended = current;
      extended.stages.push_back(next);
      extended.streams.push_back(e);
      extended.capacity += edge.depth;
      if (next != join) {
        extended.latency += node.latency + (node.ii - 1);
      }
      enumerate_paths(g, next, join, extended, out);
    }
  }
}

void check_reconverge(const PipelineGraph& g, LintReport& report) {
  for (std::size_t fork = 0; fork < g.stages().size(); ++fork) {
    if (g.out_streams(static_cast<int>(fork)).size() < 2) {
      continue;
    }
    for (std::size_t join = 0; join < g.stages().size(); ++join) {
      if (join == fork || g.in_streams(static_cast<int>(join)).size() < 2) {
        continue;
      }
      PathInfo seed;
      seed.stages.push_back(static_cast<int>(fork));
      std::vector<PathInfo> paths;
      enumerate_paths(g, static_cast<int>(fork), static_cast<int>(join),
                      seed, paths);
      if (paths.size() < 2) {
        continue;
      }
      std::uint64_t max_latency = 0;
      for (const PathInfo& p : paths) {
        max_latency = std::max(max_latency, p.latency);
      }
      for (const PathInfo& p : paths) {
        const std::uint64_t skew = max_latency - p.latency;
        if (skew == 0) {
          continue;
        }
        std::ostringstream route;
        for (std::size_t i = 0; i < p.stages.size(); ++i) {
          route << (i ? " -> " : "") << stage_name(g, p.stages[i]);
        }
        const std::string first_stream =
            p.streams.empty()
                ? std::string()
                : g.streams()[static_cast<std::size_t>(p.streams.front())]
                      .name;
        if (p.capacity < skew) {
          std::ostringstream msg;
          msg << "reconverging path " << route.str() << " has total FIFO "
              << "capacity " << p.capacity << " but its sibling path is "
              << skew << " cycles slower: the join at '"
              << stage_name(g, p.stages.back()) << "' starves while the "
              << "fork at '" << stage_name(g, p.stages.front())
              << "' is wedged on a full FIFO — deadlock";
          std::ostringstream fix;
          fix << "grow the FIFOs along this path to at least " << skew + 1
              << " total slots (skew " << skew << " + 1 in flight)";
          add(report, Severity::kError, "deadlock.reconverge_capacity",
              stage_name(g, static_cast<int>(fork)), first_stream, msg.str(),
              fix.str());
        } else if (p.capacity == skew) {
          std::ostringstream msg;
          msg << "reconverging path " << route.str() << " has exactly the "
              << "FIFO capacity (" << p.capacity << ") its sibling's skew "
              << "requires: it runs, but with zero slack every beat "
              << "back-pressures the fork";
          std::ostringstream fix;
          fix << "add one slot of headroom (capacity >= " << skew + 1
              << ") to sustain II=1 through the join";
          add(report, Severity::kWarning, "deadlock.reconverge_capacity",
              stage_name(g, static_cast<int>(fork)), first_stream, msg.str(),
              fix.str());
        }
      }
    }
  }
}

// --- throughput --------------------------------------------------------

unsigned downstream_bottleneck(const PipelineGraph& g, int s,
                               std::vector<unsigned>& memo) {
  unsigned& cached = memo[static_cast<std::size_t>(s)];
  if (cached != 0) {
    return cached;
  }
  unsigned worst = g.stages()[static_cast<std::size_t>(s)].ii;
  for (int next : g.successors(s)) {
    worst = std::max(worst, downstream_bottleneck(g, next, memo));
  }
  cached = worst;
  return worst;
}

void check_throughput(const PipelineGraph& g, const LintOptions& options,
                      LintReport& report) {
  unsigned worst = 1;
  std::vector<unsigned> memo(g.stages().size(), 0);
  for (std::size_t s = 0; s < g.stages().size(); ++s) {
    if (g.stages()[s].detached) {
      continue;
    }
    if (g.in_streams(static_cast<int>(s)).empty() &&
        !g.out_streams(static_cast<int>(s)).empty()) {
      worst = std::max(worst,
                       downstream_bottleneck(g, static_cast<int>(s), memo));
    }
  }
  report.predicted_peak_fraction = 1.0 / static_cast<double>(worst);

  for (const StageNode& node : g.stages()) {
    if (node.detached || node.ii <= options.target_ii) {
      continue;
    }
    std::ostringstream msg;
    msg << "stage initiation interval is " << node.ii
        << " in a chain targeting II=" << options.target_ii
        << ": every source->sink path through it runs at "
        << 100.0 / node.ii << "% of the II=1 beat rate (the URAM effect of "
        << "paper SIII.A; cross-checks pw::fpga::perf_model's shift_ii "
        << "input)";
    add(report,
        options.enforce_target_ii ? Severity::kError : Severity::kWarning,
        "throughput.ii_mismatch", node.name, "", msg.str(),
        "restructure the stage (e.g. BRAM instead of URAM, split the "
        "read-modify-write) to reach II=" +
            std::to_string(options.target_ii));
  }

  std::ostringstream msg;
  msg << "predicted steady-state throughput is "
      << 100.0 * report.predicted_peak_fraction
      << "% of the II=1 peak (worst path II=" << worst << ")";
  add(report, Severity::kInfo, "throughput.predicted_peak", "", "",
      msg.str(), "");
}

// --- shift-buffer geometry ---------------------------------------------

void check_shift_buffers(const PipelineGraph& g, const LintOptions& options,
                         LintReport& report) {
  for (const StageNode& node : g.stages()) {
    if (!node.shift_buffer.has_value()) {
      continue;
    }
    const ShiftBufferGeometry& geo = *node.shift_buffer;
    const std::size_t window = 2 * geo.halo + 1;
    if (geo.ny_padded < window || geo.nz_padded < window) {
      std::ostringstream msg;
      msg << "padded face " << geo.ny_padded << "x" << geo.nz_padded
          << " cannot hold a halo-" << geo.halo << " stencil window (needs "
          << window << "x" << window
          << "): the buffer would emit before the window is resident";
      std::ostringstream fix;
      fix << "grow chunk_y / nz so the padded face is at least " << window
          << " in both dimensions";
      add(report, Severity::kError, "shift_buffer.halo_exceeds_face",
          node.name, "", msg.str(), fix.str());
      continue;
    }
    const std::size_t interior =
        geo.ny_padded >= 2 * geo.halo ? geo.ny_padded - 2 * geo.halo : 0;
    if (interior < options.min_chunk_width) {
      std::ostringstream msg;
      msg << "interior chunk width " << interior << " is below "
          << options.min_chunk_width
          << ": external-memory bursts this short measurably cut bandwidth "
          << "(paper Fig. 4 observation)";
      add(report, Severity::kWarning, "shift_buffer.short_burst", node.name,
          "", msg.str(),
          "raise chunk_y (>= " + std::to_string(options.min_chunk_width) +
              " interior columns) unless on-chip memory forbids it");
    }
  }
}

// --- placement ---------------------------------------------------------

/// Every stage of a dataflow region is supposed to run all the time —
/// that is the whole model. Two stages pinned to one logical core
/// time-share it, so each handoff between them costs a context switch and
/// the chain's throughput halves; doing that while other cores have no
/// pin at all is never intentional. Core indices are normalised modulo
/// `available_cores`, matching how apply_placement wraps them, so a spec
/// tuned for a bigger box is judged as it will actually land here.
void check_placement(const PipelineGraph& g, const LintOptions& options,
                     LintReport& report) {
  if (options.available_cores <= 0) {
    return;
  }
  std::map<int, std::vector<int>> stages_by_core;
  for (std::size_t s = 0; s < g.stages().size(); ++s) {
    const int pin = g.stages()[s].pinned_core;
    if (pin >= 0) {
      stages_by_core[pin % options.available_cores].push_back(
          static_cast<int>(s));
    }
  }
  const int used_cores = static_cast<int>(stages_by_core.size());
  if (used_cores >= options.available_cores) {
    return;  // every core carries a pin: sharing is forced, not a mistake
  }
  int free_core = 0;
  while (stages_by_core.count(free_core) != 0) {
    ++free_core;
  }
  for (const auto& [core, stages] : stages_by_core) {
    if (stages.size() < 2) {
      continue;
    }
    std::ostringstream msg;
    msg << stages.size() << " stages (";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      msg << (i ? ", " : "") << stage_name(g, stages[i]);
    }
    msg << ") pinned to core " << core << " while only " << used_cores
        << " of " << options.available_cores
        << " cores carry a pin: the stages time-share one core and every "
           "handoff between them costs a context switch";
    add(report, Severity::kError, "placement.oversubscribed",
        stage_name(g, stages[1]), "", msg.str(),
        "spread the pins — core " + std::to_string(free_core) +
            " is free (PlacementSpec::core(" + std::to_string(free_core) +
            "))");
  }
}

// --- declared vs live capacity -----------------------------------------

/// Every capacity-sensitive check above reasons from StreamEdge::depth —
/// the *declared* depth. When a probe is attached (the graph is wired to a
/// live pipeline) we can also see the FIFO's *actual* capacity; a mismatch
/// means the graph lies about the pipeline it describes, silently
/// invalidating the reconverge-capacity analysis. PR 6's StreamOptions
/// migration made real capacities introspectable everywhere, so this is
/// now checkable.
void check_capacity_probes(const PipelineGraph& g, LintReport& report) {
  for (const StreamEdge& edge : g.streams()) {
    if (!edge.probe || edge.depth == 0) {
      continue;
    }
    const StreamProbe probe = edge.probe();
    if (probe.capacity == 0 || probe.capacity == edge.depth) {
      continue;
    }
    std::ostringstream msg;
    msg << "declared depth " << edge.depth << " but the live stream holds "
        << probe.capacity
        << " slots: the capacity-sensitive checks (deadlock.reconverge_"
        << "capacity) analysed a different pipeline than the one running";
    add(report, Severity::kError, "capacity.live_mismatch", "", edge.name,
        msg.str(),
        "construct the stream with {.capacity = " +
            std::to_string(edge.depth) + "} or fix the declared depth");
  }
}

bool suppressed(const Diagnostic& d, const LintOptions& options) {
  for (const std::string& rule : options.suppress) {
    if (d.check.compare(0, rule.size(), rule) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

LintReport run_checks(const PipelineGraph& graph, const LintOptions& options) {
  LintReport report;
  check_connectivity(graph, report);
  const bool acyclic = check_cycles(graph, report);
  if (acyclic) {
    check_reconverge(graph, report);
    check_throughput(graph, options, report);
  }
  check_shift_buffers(graph, options, report);
  check_placement(graph, options, report);
  check_capacity_probes(graph, report);

  if (!options.suppress.empty()) {
    std::vector<Diagnostic> kept;
    std::size_t dropped = 0;
    for (Diagnostic& d : report.diagnostics) {
      if (suppressed(d, options)) {
        ++dropped;
      } else {
        kept.push_back(std::move(d));
      }
    }
    report.diagnostics = std::move(kept);
    if (dropped > 0) {
      add(report, Severity::kInfo, "lint.suppressed", "", "",
          std::to_string(dropped) + " diagnostic(s) suppressed by options",
          "");
    }
  }
  return report;
}

}  // namespace pw::lint
