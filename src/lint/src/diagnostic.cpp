#include "pw/lint/diagnostic.hpp"

#include <sstream>

namespace pw::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::size_t LintReport::errors() const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == Severity::kError ? 1 : 0;
  }
  return n;
}

std::size_t LintReport::warnings() const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == Severity::kWarning ? 1 : 0;
  }
  return n;
}

std::string LintReport::summary() const {
  std::ostringstream os;
  os << "pwlint: " << errors() << " error(s), " << warnings()
     << " warning(s)\n";
  for (const Diagnostic& d : diagnostics) {
    os << "  [" << to_string(d.severity) << "] " << d.check;
    if (!d.stage.empty()) {
      os << " stage='" << d.stage << '\'';
    }
    if (!d.stream.empty()) {
      os << " stream='" << d.stream << '\'';
    }
    os << ": " << d.message;
    if (!d.fix_hint.empty()) {
      os << " (fix: " << d.fix_hint << ')';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pw::lint
