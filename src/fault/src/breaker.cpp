#include "pw/fault/breaker.hpp"

namespace pw::fault {

const char* to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

void CircuitBreaker::open_locked() {
  state_ = State::kOpen;
  ++opens_;
  opened_at_ = std::chrono::steady_clock::now();
  failures_ = 0;
  probes_in_flight_ = 0;
}

bool CircuitBreaker::allow() {
  std::lock_guard lock(mutex_);
  if (policy_.failure_threshold == 0) {
    return true;
  }
  if (state_ == State::kClosed) {
    return true;
  }
  if (state_ == State::kOpen) {
    if (std::chrono::steady_clock::now() - opened_at_ < policy_.cooldown) {
      return false;
    }
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
  }
  // Half-open: admit up to the probe budget.
  if (probes_in_flight_ < policy_.half_open_probes) {
    ++probes_in_flight_;
    return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  std::lock_guard lock(mutex_);
  failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    probes_in_flight_ = 0;
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard lock(mutex_);
  if (policy_.failure_threshold == 0) {
    return;
  }
  switch (state_) {
    case State::kHalfOpen:
      open_locked();  // a failed probe re-opens with a fresh cooldown
      break;
    case State::kClosed:
      if (++failures_ >= policy_.failure_threshold) {
        open_locked();
      }
      break;
    case State::kOpen:
      // A failure completing while open (raced the trip): refresh the
      // cooldown so a flapping backend does not half-open early.
      opened_at_ = std::chrono::steady_clock::now();
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  std::lock_guard lock(mutex_);
  return opens_;
}

std::size_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard lock(mutex_);
  return failures_;
}

}  // namespace pw::fault
