#include "pw/fault/injector.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "pw/obs/metrics.hpp"

namespace pw::fault {

namespace detail {
std::atomic<FaultInjector*> g_armed{nullptr};
}

namespace {

/// SplitMix64-style mix of (seed, rule, hit) -> u64: the whole source of
/// injection randomness, so a schedule is a pure function of the plan.
std::uint64_t mix(std::uint64_t seed, std::uint64_t rule, std::uint64_t hit) {
  std::uint64_t z = seed ^ (rule * 0x9E3779B97F4A7C15ULL) ^
                    (hit * 0xBF58476D1CE4E5B9ULL);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool matches(const std::string& pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return site.substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  }
  return site == pattern;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, obs::MetricsRegistry* metrics)
    : plan_(std::move(plan)),
      metrics_(metrics),
      states_(plan_.rules.size()) {}

std::optional<Fault> FaultInjector::fire(std::string_view site,
                                         std::string_view attribution) {
  std::lock_guard lock(mutex_);
  ++checks_;
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (!matches(rule.site, site)) {
      continue;
    }
    RuleState& state = states_[r];
    const std::uint64_t hit = state.hits++;
    if (hit < rule.after || state.injected >= rule.count) {
      continue;
    }
    bool inject = rule.probability >= 1.0;
    if (!inject && rule.probability > 0.0) {
      const double u01 =
          static_cast<double>(mix(plan_.seed, r, hit) >> 11) * 0x1.0p-53;
      inject = u01 < rule.probability;
    }
    if (!inject) {
      continue;
    }
    ++state.injected;
    state.fired_hits.push_back(hit);
    ++by_site_[std::string(site)];
    ++by_kind_[to_string(rule.kind)];
    if (!attribution.empty()) {
      ++by_stream_[std::string(attribution)];
    }
    if (metrics_ != nullptr) {
      metrics_->counter_add("fault.injected");
      metrics_->counter_add(std::string("fault.injected.") +
                            to_string(rule.kind));
    }
    return Fault{rule.kind, rule.latency_s, r, hit};
  }
  return std::nullopt;
}

FaultReport FaultInjector::report() const {
  std::lock_guard lock(mutex_);
  FaultReport report;
  report.checks = checks_;
  report.by_site = by_site_;
  report.by_kind = by_kind_;
  report.by_stream = by_stream_;
  report.fired_hits.reserve(states_.size());
  for (const RuleState& state : states_) {
    std::vector<std::uint64_t> hits = state.fired_hits;
    std::sort(hits.begin(), hits.end());
    report.injected += hits.size();
    report.fired_hits.push_back(std::move(hits));
  }
  return report;
}

std::string FaultReport::schedule() const {
  std::string out;
  for (std::size_t r = 0; r < fired_hits.size(); ++r) {
    if (r != 0) {
      out += " ";
    }
    out += std::to_string(r) + ":[";
    for (std::size_t i = 0; i < fired_hits[r].size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += std::to_string(fired_hits[r][i]);
    }
    out += "]";
  }
  return out;
}

void apply_latency(const Fault& fault) {
  if (fault.latency_s > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(fault.latency_s));
  }
}

void throw_if(std::string_view site) {
  const std::optional<Fault> fault = check(site);
  if (!fault) {
    return;
  }
  switch (fault->kind) {
    case FaultKind::kStreamStall:
    case FaultKind::kSpuriousLatency:
      apply_latency(*fault);
      return;
    case FaultKind::kStreamClose:
      return;  // no stream at this site
    case FaultKind::kTransferFailure:
    case FaultKind::kKernelTimeout:
    case FaultKind::kAllocFailure:
      throw FaultError(fault->kind, std::string(site));
  }
}

}  // namespace pw::fault
