#include "pw/fault/fault.hpp"

#include <sstream>

namespace pw::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStreamStall:
      return "stream_stall";
    case FaultKind::kStreamClose:
      return "stream_close";
    case FaultKind::kTransferFailure:
      return "transfer_failure";
    case FaultKind::kKernelTimeout:
      return "kernel_timeout";
    case FaultKind::kAllocFailure:
      return "alloc_failure";
    case FaultKind::kSpuriousLatency:
      return "spurious_latency";
  }
  return "unknown";
}

std::optional<FaultKind> parse_fault_kind(std::string_view name) {
  for (const FaultKind kind : kAllFaultKinds) {
    if (name == to_string(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

namespace {

void append_double(std::string& out, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  out += os.str();
}

constexpr std::uint64_t kNoLimit = std::numeric_limits<std::uint64_t>::max();

}  // namespace

std::string to_string(const FaultPlan& plan) {
  std::string out = "seed " + std::to_string(plan.seed) + "\n";
  for (const FaultRule& rule : plan.rules) {
    out += "rule site=" + rule.site + " kind=" + to_string(rule.kind) +
           " prob=";
    append_double(out, rule.probability);
    out += " after=" + std::to_string(rule.after) + " count=";
    out += rule.count == kNoLimit ? "inf" : std::to_string(rule.count);
    out += " latency_s=";
    append_double(out, rule.latency_s);
    out += "\n";
  }
  return out;
}

bool parse_plan(const std::string& text, FaultPlan& out, std::string& error) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& message) {
    error = "line " + std::to_string(line_no) + ": " + message;
    return false;
  };
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head) || head[0] == '#') {
      continue;  // blank or comment
    }
    if (head == "seed") {
      if (!(tokens >> plan.seed)) {
        return fail("seed expects an unsigned integer");
      }
      continue;
    }
    if (head != "rule") {
      return fail("expected 'seed', 'rule' or '#', got '" + head + "'");
    }
    FaultRule rule;
    bool have_site = false;
    std::string pair;
    while (tokens >> pair) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return fail("expected key=value, got '" + pair + "'");
      }
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      std::istringstream parse(value);
      if (key == "site") {
        rule.site = value;
        have_site = !value.empty();
      } else if (key == "kind") {
        const auto kind = parse_fault_kind(value);
        if (!kind) {
          return fail("unknown fault kind '" + value + "'");
        }
        rule.kind = *kind;
      } else if (key == "prob") {
        if (!(parse >> rule.probability)) {
          return fail("prob expects a number");
        }
      } else if (key == "after") {
        if (!(parse >> rule.after)) {
          return fail("after expects an unsigned integer");
        }
      } else if (key == "count") {
        if (value == "inf") {
          rule.count = kNoLimit;
        } else if (!(parse >> rule.count)) {
          return fail("count expects an unsigned integer or 'inf'");
        }
      } else if (key == "latency_s") {
        if (!(parse >> rule.latency_s)) {
          return fail("latency_s expects a number");
        }
      } else if (key == "latency_ms") {
        double ms = 0.0;
        if (!(parse >> ms)) {
          return fail("latency_ms expects a number");
        }
        rule.latency_s = ms / 1e3;
      } else {
        return fail("unknown key '" + key + "'");
      }
    }
    if (!have_site) {
      return fail("rule needs a site=");
    }
    plan.rules.push_back(std::move(rule));
  }
  out = std::move(plan);
  error.clear();
  return true;
}

}  // namespace pw::fault
