#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pw::fault {

/// The injectable fault taxonomy — the data-movement failure surface of the
/// paper's host/device design: wedged or torn-down streams, failed
/// PCIe/OpenCL buffer transfers, kernels that never come back, allocation
/// failure under memory pressure, and plain slowness.
enum class FaultKind {
  kStreamStall,      ///< a dataflow stream blocks for latency_s before moving
  kStreamClose,      ///< a dataflow stream is closed under the producer
  kTransferFailure,  ///< an OCL buffer write/read fails (throws FaultError)
  kKernelTimeout,    ///< a launched kernel never completes (throws FaultError)
  kAllocFailure,     ///< device buffer allocation fails (throws FaultError)
  kSpuriousLatency,  ///< extra latency_s (wall or modelled, site-dependent)
};

const char* to_string(FaultKind kind);
std::optional<FaultKind> parse_fault_kind(std::string_view name);

/// Every FaultKind enumerator, for exhaustive iteration in tests.
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kStreamStall,     FaultKind::kStreamClose,
    FaultKind::kTransferFailure, FaultKind::kKernelTimeout,
    FaultKind::kAllocFailure,    FaultKind::kSpuriousLatency,
};

/// One schedule entry of a FaultPlan: inject `kind` at hook sites matching
/// `site`, deciding per eligible hit from the plan seed (so the schedule is
/// a pure function of the plan, not of wall clock or thread timing).
struct FaultRule {
  /// Exact site name ("ocl.enqueue_write") or a prefix wildcard ("ocl.*",
  /// "*" matches everything). See docs/fault_injection.md for the site
  /// inventory.
  std::string site;
  FaultKind kind = FaultKind::kTransferFailure;
  /// Per-eligible-hit injection probability; decisions are drawn from
  /// hash(plan.seed, rule index, hit index), so the decision *sequence* is
  /// byte-identical across runs with the same seed.
  double probability = 1.0;
  /// Skip the first `after` matching hits (fault appears mid-run).
  std::uint64_t after = 0;
  /// Stop after this many injections (transient vs. permanent faults).
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  /// Sleep / modelled delay for the latency-shaped kinds.
  double latency_s = 0.0;

  bool operator==(const FaultRule&) const = default;
};

/// A seeded, reproducible schedule of injectable faults. Arm it through a
/// FaultInjector (pw/fault/injector.hpp); an empty plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool operator==(const FaultPlan&) const = default;
};

/// Serialises a plan in the line-based format parse_plan reads:
///
///   seed 42
///   rule site=serve.solve.fused kind=transfer_failure prob=1 count=3
///
/// round-trips exactly (tested), so plans can live in files next to the
/// traces they chaos-test.
std::string to_string(const FaultPlan& plan);

/// Parses the format above ('#' comments and blank lines ignored). Returns
/// false and sets `error` on the first malformed line.
bool parse_plan(const std::string& text, FaultPlan& out, std::string& error);

/// Thrown by injection hooks for the hard-failure kinds (transfer, kernel
/// timeout, allocation). pw::api::Solver catches it and surfaces
/// SolveError::kBackendFault; nothing else in the stack should swallow it.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, std::string site)
      : std::runtime_error(std::string("injected ") + fault::to_string(kind) +
                           " at " + site),
        kind_(kind),
        site_(std::move(site)) {}

  FaultKind kind() const noexcept { return kind_; }
  const std::string& site() const noexcept { return site_; }

 private:
  FaultKind kind_;
  std::string site_;
};

}  // namespace pw::fault
