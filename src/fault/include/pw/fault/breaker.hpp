#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace pw::fault {

/// Tuning of one CircuitBreaker.
struct BreakerPolicy {
  /// Consecutive failures that trip the breaker open. 0 disables the
  /// breaker entirely (allow() is always true).
  std::size_t failure_threshold = 5;
  /// How long an open breaker rejects before letting probes through.
  std::chrono::nanoseconds cooldown = std::chrono::milliseconds(100);
  /// Probe budget in the half-open state: this many calls are admitted;
  /// one success closes the breaker, one failure re-opens it.
  std::size_t half_open_probes = 1;
};

/// Per-backend circuit breaker: closed -> (N consecutive failures) -> open
/// -> (cooldown) -> half-open probes -> closed on success / open on
/// failure. Callers pair every allow() == true with exactly one
/// record_success() or record_failure(). Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  /// May a call proceed right now? Open breakers start admitting again
  /// (half-open, up to half_open_probes outstanding) once the cooldown has
  /// elapsed.
  bool allow();

  void record_success();
  void record_failure();

  State state() const;
  /// Times the breaker transitioned closed/half-open -> open.
  std::uint64_t opens() const;
  std::size_t consecutive_failures() const;

 private:
  void open_locked();

  BreakerPolicy policy_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::size_t failures_ = 0;        ///< consecutive, while closed
  std::size_t probes_in_flight_ = 0;
  std::uint64_t opens_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

const char* to_string(CircuitBreaker::State state);

}  // namespace pw::fault
