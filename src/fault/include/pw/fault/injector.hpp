#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pw/fault/fault.hpp"

namespace pw::obs {
class MetricsRegistry;
}

namespace pw::fault {

/// One fired fault, as handed to a hook site.
struct Fault {
  FaultKind kind = FaultKind::kTransferFailure;
  double latency_s = 0.0;
  std::size_t rule = 0;      ///< index of the firing rule in the plan
  std::uint64_t hit = 0;     ///< the rule's eligible-hit index that fired
};

/// Point-in-time summary of an injector: how often hooks consulted it, what
/// it injected, and the canonical schedule string two same-seed runs of the
/// same workload must agree on byte-for-byte.
struct FaultReport {
  std::uint64_t checks = 0;    ///< fire() consultations while armed
  std::uint64_t injected = 0;  ///< faults actually fired
  std::map<std::string, std::uint64_t> by_site;
  std::map<std::string, std::uint64_t> by_kind;
  /// Injections per named stream (PR 6): sites stay coarse
  /// ("dataflow.stream.push"), attribution says *which* stream ate the
  /// fault. Anonymous streams don't appear. Purely additive — by_site and
  /// schedule() are byte-identical with or without attribution.
  std::map<std::string, std::uint64_t> by_stream;
  /// Per rule, the sorted eligible-hit indices that injected. Sorted so the
  /// string is deterministic even when hits interleave across threads.
  std::vector<std::vector<std::uint64_t>> fired_hits;

  /// Canonical byte-comparable serialisation: "0:[1,3,8] 1:[0]".
  std::string schedule() const;
};

/// Deterministic runtime for one FaultPlan. Hook sites call fire(site); the
/// injector matches the site against every rule and decides from
/// hash(seed, rule, hit) — never from wall clock or thread identity — so
/// the per-rule decision sequence is a pure function of the plan. All
/// methods are thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan,
                         obs::MetricsRegistry* metrics = nullptr);

  /// Consults the plan for `site`. Returns the first matching rule's fault
  /// when it fires; increments per-rule hit counters either way. A
  /// non-empty `attribution` (a stream name) is recorded in
  /// FaultReport::by_stream when the fault fires; it never influences the
  /// match or the injection decision, so schedules stay seed-deterministic.
  std::optional<Fault> fire(std::string_view site,
                            std::string_view attribution = {});

  const FaultPlan& plan() const noexcept { return plan_; }
  FaultReport report() const;

 private:
  FaultPlan plan_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  struct RuleState {
    std::uint64_t hits = 0;      ///< matching consultations so far
    std::uint64_t injected = 0;  ///< injections so far (bounded by count)
    std::vector<std::uint64_t> fired_hits;
  };
  std::vector<RuleState> states_;
  std::uint64_t checks_ = 0;
  std::map<std::string, std::uint64_t> by_site_;
  std::map<std::string, std::uint64_t> by_kind_;
  std::map<std::string, std::uint64_t> by_stream_;
};

namespace detail {
extern std::atomic<FaultInjector*> g_armed;
}

/// The process-wide armed injector; nullptr (the steady state) disables
/// every hook at the cost of one atomic load. Hooks are compiled in
/// unconditionally — bench/fault_overhead pins the disarmed cost at <1% of
/// served solve time.
inline FaultInjector* armed() noexcept {
  return detail::g_armed.load(std::memory_order_acquire);
}

/// Arms `injector` for the lifetime of the scope (tests, pwserve
/// --fault-plan). Nesting restores the previous injector; arming is
/// process-global, so arm around a whole workload rather than per thread.
class ScopedArm {
 public:
  explicit ScopedArm(FaultInjector& injector)
      : previous_(detail::g_armed.exchange(&injector,
                                           std::memory_order_acq_rel)) {}
  ~ScopedArm() {
    detail::g_armed.store(previous_, std::memory_order_release);
  }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  FaultInjector* previous_;
};

/// The hook every instrumented layer calls: nullopt (one atomic load) when
/// disarmed, otherwise the armed injector's decision for `site`. Pass the
/// stream's name as `attribution` from stream-shaped sites so chaos
/// reports can say which edge of the pipeline a fault landed on.
inline std::optional<Fault> check(std::string_view site,
                                  std::string_view attribution = {}) {
  FaultInjector* injector = armed();
  if (injector == nullptr) {
    return std::nullopt;
  }
  return injector->fire(site, attribution);
}

/// Sleeps out a latency-shaped fault (no-op for latency_s <= 0).
void apply_latency(const Fault& fault);

/// Convenience hook for sites where every hard fault is an exception:
/// latency kinds sleep, stream kinds are ignored (no stream here), the
/// hard-failure kinds throw FaultError.
void throw_if(std::string_view site);

}  // namespace pw::fault
