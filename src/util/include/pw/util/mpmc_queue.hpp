#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pw::util {

/// Bounded multi-producer/multi-consumer FIFO — the backpressure primitive
/// behind the serve layer's admission queue.
///
/// Semantics:
///   - try_push never blocks; it fails when the queue is full or closed.
///   - push blocks while full and fails only once the queue is closed.
///   - pop blocks while empty; after close() it keeps draining whatever is
///     already queued and returns nullopt only when closed *and* empty.
///   - close() wakes every blocked producer and consumer.
template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Non-blocking enqueue; false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking enqueue; waits for space. False only when closed.
  bool push(T value) {
    {
      std::unique_lock lock(mutex_);
      not_full_.wait(lock, [this] {
        return closed_ || items_.size() < capacity_;
      });
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking dequeue; nullopt when currently empty.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) {
        return std::nullopt;
      }
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Blocking dequeue; nullopt once closed and drained.
  std::optional<T> pop() {
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return std::nullopt;
      }
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Dequeue with a timeout; nullopt on timeout or once closed and drained
  /// (distinguish via closed()).
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait_for(lock, timeout,
                          [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return std::nullopt;
      }
      value.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Stops admission (pushes fail) but lets consumers drain what remains.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pw::util
