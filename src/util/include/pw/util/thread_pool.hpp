#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pw::util {

/// Fixed-size worker pool with a shared FIFO task queue.
///
/// Used by the CPU advection baseline and by the threaded dataflow executor.
/// Tasks are arbitrary `void()` callables; submit() returns a future that
/// becomes ready when the task completes (exceptions propagate through it).
class ThreadPool {
public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace pw::util
