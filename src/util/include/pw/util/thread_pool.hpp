#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pw::util {

/// Fixed-size worker pool with per-worker task deques and work stealing.
///
/// Used by the CPU advection baseline, the threaded dataflow executor and
/// the serve layer's per-backend worker pools. Tasks are arbitrary
/// `void()` callables; submit() returns a future that becomes ready when
/// the task completes (exceptions propagate through it).
///
/// Scheduling: submit() places tasks round-robin across worker deques;
/// submit_on() pins a task to one worker (batch affinity — consecutive
/// same-shape batches reuse a warm worker). Each worker drains its own
/// deque front-first and, when empty, steals from the back of the most
/// loaded sibling. Coordination is a single mutex — deterministic and
/// sanitizer-friendly rather than lock-free; the tasks this pool runs are
/// orders of magnitude longer than the handoff.
class ThreadPool {
public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for execution on some worker (round-robin placement,
  /// any idle worker may steal it).
  std::future<void> submit(std::function<void()> task);

  /// Enqueues a task on worker `worker % size()`'s own deque. The pinned
  /// worker prefers it, but a starving sibling may still steal it — the
  /// hint trades locality, never progress.
  std::future<void> submit_on(std::size_t worker, std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Scheduling counters (cumulative since construction).
  struct Stats {
    std::uint64_t executed = 0;  ///< tasks run to completion
    std::uint64_t stolen = 0;    ///< tasks taken from another worker's deque
  };
  Stats stats() const;

private:
  void worker_loop(std::size_t self);
  /// Pops the next task for worker `self` (own front, else steal from the
  /// most loaded sibling's back). Caller must hold mutex_; returns false
  /// when every deque is empty.
  bool take_task(std::size_t self, std::packaged_task<void()>& out);

  std::vector<std::thread> workers_;
  std::vector<std::deque<std::packaged_task<void()>>> queues_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t queued_ = 0;
  std::size_t active_ = 0;
  std::size_t next_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t stolen_ = 0;
  bool stop_ = false;
};

}  // namespace pw::util
