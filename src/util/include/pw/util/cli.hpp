#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pw::util {

/// Minimal `--key=value` / `--flag` command-line parser used by examples and
/// bench binaries. Unknown keys are collected so callers can reject them.
class Cli {
public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key, std::string fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  /// Keys present on the command line that were never queried.
  std::vector<std::string> unqueried() const;

private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace pw::util
