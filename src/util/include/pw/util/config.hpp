#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pw::util {

/// INI-flavoured key=value configuration:
///
///   # comment
///   name = My Board
///   [pcie]
///   peak_gbps = 15.75
///
/// Section headers prefix subsequent keys ("pcie.peak_gbps"). Values keep
/// internal whitespace; surrounding whitespace is trimmed. Used to load
/// user-defined device profiles into the explorer tools.
class Config {
public:
  static Config parse(std::istream& is);
  static Config parse_string(const std::string& text);
  static Config load(const std::string& path);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key, std::string fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// A required key: throws std::runtime_error naming the key if absent.
  std::string require(const std::string& key) const;
  double require_double(const std::string& key) const;

  std::vector<std::string> keys() const;
  void set(const std::string& key, std::string value);

private:
  std::map<std::string, std::string> values_;
};

}  // namespace pw::util
