#pragma once

#include <cstdint>

namespace pw::util {

/// Deterministic xoshiro256** generator; seeded reproducibly so tests,
/// examples and benches generate identical synthetic fields across runs.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    auto next = [&seed] {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) {
      word = next();
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace pw::util
