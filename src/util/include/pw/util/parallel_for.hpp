#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "pw/util/thread_pool.hpp"

namespace pw::util {

/// Splits [begin, end) into roughly equal contiguous ranges, one per worker,
/// and invokes `body(range_begin, range_end)` on the pool. Blocks until all
/// ranges complete. Degenerates to a direct call when the range is tiny or
/// the pool has a single worker.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, std::size_t min_grain = 1) {
  if (begin >= end) {
    return;
  }
  const std::size_t total = end - begin;
  std::size_t parts = pool.size();
  if (parts <= 1 || total <= min_grain) {
    body(begin, end);
    return;
  }
  parts = std::min(parts, (total + min_grain - 1) / min_grain);
  const std::size_t chunk = (total + parts - 1) / parts;

  std::vector<std::future<void>> futures;
  futures.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t lo = begin + p * chunk;
    if (lo >= end) {
      break;
    }
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& future : futures) {
    future.get();
  }
}

}  // namespace pw::util
