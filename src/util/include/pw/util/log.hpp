#pragma once

#include <sstream>
#include <string>

namespace pw::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level (default kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe line logger to stderr; no-op below the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename Head, typename... Tail>
void append(std::ostringstream& os, Head&& head, Tail&&... tail) {
  os << std::forward<Head>(head);
  append(os, std::forward<Tail>(tail)...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) {
    return;
  }
  std::ostringstream os;
  detail::append(os, std::forward<Args>(args)...);
  log_line(level, os.str());
}

template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}

}  // namespace pw::util
