#pragma once

#include <cstddef>
#include <span>

namespace pw::util {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double median = 0.0;
};

/// Computes summary statistics; an empty span yields a zeroed Summary.
Summary summarize(std::span<const double> values);

/// Relative difference |a-b| / max(|a|, |b|, eps); 0 when both are ~0.
double relative_difference(double a, double b, double eps = 1e-300);

/// Geometric mean of strictly positive values (0 if the span is empty or
/// contains a non-positive value).
double geometric_mean(std::span<const double> values);

}  // namespace pw::util
