#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pw::util {

/// Paper-style ASCII table: a caption, a header row, and data rows, rendered
/// with column alignment. Also serialisable as CSV so bench binaries can feed
/// plotting scripts.
class Table {
public:
  explicit Table(std::string caption) : caption_(std::move(caption)) {}

  Table& header(std::vector<std::string> columns);
  Table& row(std::vector<std::string> cells);

  const std::string& caption() const noexcept { return caption_; }
  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }
  const std::vector<std::string>& row_at(std::size_t i) const {
    return rows_.at(i);
  }

  /// Renders as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders as CSV (header + rows); cells containing commas or quotes are
  /// quoted per RFC 4180.
  void write_csv(std::ostream& os) const;

private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant-looking decimal places,
/// trimming trailing zeros ("14.50" stays "14.50" only if trim=false).
std::string format_double(double value, int decimals, bool trim = false);

/// Formats bytes using binary units (e.g. "800.0 MB", "3.2 GB").
std::string format_bytes(double bytes);

/// Formats a cell count like the paper ("1M", "16M", "536M", "4096").
std::string format_cells(std::size_t cells);

}  // namespace pw::util
