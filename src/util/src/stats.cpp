#include "pw/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pw::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double v : sorted) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);

  if (s.count > 1) {
    double sq = 0.0;
    for (double v : sorted) {
      sq += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(sq / static_cast<double>(s.count - 1));
  }

  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1) ? sorted[mid]
                                : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double relative_difference(double a, double b, double eps) {
  const double scale = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / scale;
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      return 0.0;
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace pw::util
