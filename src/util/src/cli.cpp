#include "pw/util/cli.hpp"

#include <stdexcept>

namespace pw::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      options_[arg.substr(2)] = "true";
    } else {
      options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  for (const auto& [key, value] : options_) {
    (void)value;
    queried_[key] = false;
  }
}

bool Cli::has(const std::string& key) const {
  auto it = options_.find(key);
  if (it == options_.end()) {
    return false;
  }
  queried_[key] = true;
  return true;
}

std::optional<std::string> Cli::get(const std::string& key) const {
  auto it = options_.find(key);
  if (it == options_.end()) {
    return std::nullopt;
  }
  queried_[key] = true;
  return it->second;
}

std::string Cli::get_string(const std::string& key, std::string fallback) const {
  if (auto v = get(key)) {
    return *v;
  }
  return fallback;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  if (auto v = get(key)) {
    return std::stoll(*v);
  }
  return fallback;
}

double Cli::get_double(const std::string& key, double fallback) const {
  if (auto v = get(key)) {
    return std::stod(*v);
  }
  return fallback;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  if (auto v = get(key)) {
    return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
  }
  return fallback;
}

std::vector<std::string> Cli::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [key, seen] : queried_) {
    if (!seen) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace pw::util
