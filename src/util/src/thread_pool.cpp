#include "pw/util/thread_pool.hpp"

namespace pw::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace pw::util
