#include "pw/util/thread_pool.hpp"

#include <algorithm>

namespace pw::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard lock(mutex_);
    target = next_;
    next_ = (next_ + 1) % queues_.size();
  }
  return submit_on(target, std::move(task));
}

std::future<void> ThreadPool::submit_on(std::size_t worker,
                                        std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queues_[worker % queues_.size()].push_back(std::move(packaged));
    ++queued_;
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(mutex_);
  return Stats{executed_, stolen_};
}

bool ThreadPool::take_task(std::size_t self,
                           std::packaged_task<void()>& out) {
  auto& own = queues_[self];
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    return true;
  }
  // Steal from the back of the most loaded sibling — the task least likely
  // to be hot in that worker's cache.
  std::size_t victim = self;
  std::size_t victim_depth = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i != self && queues_[i].size() > victim_depth) {
      victim = i;
      victim_depth = queues_[i].size();
    }
  }
  if (victim_depth == 0) {
    return false;
  }
  out = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  ++stolen_;
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (stop_ && queued_ == 0) {
        return;
      }
      if (!take_task(self, task)) {
        continue;
      }
      --queued_;
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      ++executed_;
      if (queued_ == 0 && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace pw::util
