#include "pw/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace pw::util {

Table& Table::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  if (!header_.empty() && cells.size() != header_.size()) {
    throw std::invalid_argument("Table row width does not match header");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c >= widths.size()) {
        widths.resize(c + 1, 0);
      }
      widths[c] = std::max(widths[c], cells[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) {
    widen(r);
  }

  os << "== " << caption_ << " ==\n";
  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << '\n';
  };
  auto print_rule = [&os, &widths] {
    os << "+";
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };

  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& r : rows_) {
    print_row(r);
  }
  print_rule();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
  }
  for (const auto& r : rows_) {
    emit(r);
  }
}

std::string format_double(double value, int decimals, bool trim) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  std::string s = ss.str();
  if (trim && s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_double(bytes, 1) + " " + units[unit];
}

std::string format_cells(std::size_t cells) {
  if (cells >= 1'000'000) {
    // The paper truncates to whole millions (536870912 -> "536M").
    return std::to_string(cells / 1'000'000) + "M";
  }
  return std::to_string(cells);
}

}  // namespace pw::util
