#include "pw/util/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pw::util {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return {};
  }
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

}  // namespace

Config Config::parse(std::istream& is) {
  Config config;
  std::string line;
  std::string section;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string text = trim(line);
    if (text.empty() || text.front() == '#' || text.front() == ';') {
      continue;
    }
    if (text.front() == '[') {
      if (text.back() != ']') {
        throw std::runtime_error("Config: malformed section at line " +
                                 std::to_string(line_number));
      }
      section = trim(text.substr(1, text.size() - 2));
      continue;
    }
    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: missing '=' at line " +
                               std::to_string(line_number));
    }
    std::string key = trim(text.substr(0, eq));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key at line " +
                               std::to_string(line_number));
    }
    if (!section.empty()) {
      key = section + "." + key;
    }
    config.values_[key] = trim(text.substr(eq + 1));
  }
  return config;
}

Config Config::parse_string(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

Config Config::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("Config: cannot open " + path);
  }
  return parse(is);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               std::string fallback) const {
  if (auto v = get(key)) {
    return *v;
  }
  return fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  if (auto v = get(key)) {
    return std::stod(*v);
  }
  return fallback;
}

long long Config::get_int(const std::string& key, long long fallback) const {
  if (auto v = get(key)) {
    return std::stoll(*v);
  }
  return fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  if (auto v = get(key)) {
    return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
  }
  return fallback;
}

std::string Config::require(const std::string& key) const {
  if (auto v = get(key)) {
    return *v;
  }
  throw std::runtime_error("Config: missing required key '" + key + "'");
}

double Config::require_double(const std::string& key) const {
  return std::stod(require(key));
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) {
    (void)value;
    out.push_back(key);
  }
  return out;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

}  // namespace pw::util
