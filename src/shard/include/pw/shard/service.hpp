#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "pw/serve/plan_cache.hpp"
#include "pw/serve/sched.hpp"
#include "pw/shard/sharded_solver.hpp"
#include "pw/util/table.hpp"

namespace pw::shard {

/// Consistent-hash ring over device ids with virtual nodes — where a
/// request's cached result lives. Removing a device migrates only its
/// keyspace to the ring successors (the property plain modulo hashing
/// lacks), so a board death invalidates one device's cache, not all of
/// them.
class HashRing {
 public:
  explicit HashRing(std::size_t virtual_nodes = 16)
      : virtual_nodes_(virtual_nodes) {}

  void add(std::size_t device);
  void remove(std::size_t device);
  std::size_t size() const noexcept { return devices_; }
  bool empty() const noexcept { return ring_.empty(); }

  /// Owning device of `key` (the first vnode at or after it, wrapping).
  /// Precondition: !empty().
  std::size_t place(std::uint64_t key) const;

 private:
  std::size_t virtual_nodes_;
  std::size_t devices_ = 0;
  std::map<std::uint64_t, std::size_t> ring_;  ///< vnode hash -> device
};

/// Tuning of one ShardedSolveService.
struct ShardServiceConfig {
  ShardOptions shard;  ///< partitioning/interconnect/failover of each solve

  /// Per-device result-cache capacity (entries). The cache for a request
  /// lives on its consistent-hash home device; a dead device's entries die
  /// with it.
  std::size_t cache_capacity_per_device = 64;

  /// Virtual nodes per device on the placement ring.
  std::size_t virtual_nodes = 16;

  /// Admission-time lint strictness, amortised per shape via a PlanCache
  /// exactly like the single-device service.
  lint::AdmissionPolicy admission;

  /// Admission scheduling, shared with the single-device serve tier: every
  /// admitted request transits a pw::serve::sched scheduler before it is
  /// routed, so tenant quotas and policy ordering apply to sharded serving
  /// too. submit() pushes and pops one request (degenerate but uniform);
  /// submit_all() drains whole batches in policy order.
  serve::sched::Options sched;
};

/// Per-device serving counters (device ids are stable across deaths).
struct DeviceStats {
  std::size_t device = 0;
  bool alive = true;
  std::uint64_t admitted = 0;    ///< requests homed on this device
  std::uint64_t completed = 0;   ///< completed ok while homed here
  std::uint64_t cache_hits = 0;  ///< served from this device's result cache
  std::uint64_t faults = 0;      ///< solves during which this device died
  std::size_t cached_entries = 0;
};

/// Point-in-time summary of the sharded service.
struct ShardServiceReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t computed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected = 0;      ///< validation + lint rejections
  std::uint64_t shed = 0;          ///< scheduler refusals/quota evictions
  std::uint64_t degraded = 0;      ///< completions flagged degraded
  std::uint64_t failovers = 0;     ///< solves that survived a device death
  std::uint64_t cpu_failovers = 0; ///< ladder bottomed out on the CPU rung
  std::vector<DeviceStats> devices;
};

util::Table to_table(const ShardServiceReport& report);

/// Routes solve requests across the simulated device replicas of one
/// ShardedSolver: each request is fingerprinted (pw::serve's content
/// fingerprint), placed on its consistent-hash home device, and served from
/// that device's result cache when an identical request already ran.
/// Misses run the full sharded solve (every alive device cooperates on the
/// partition); completions are cached on the home device. When a solve
/// kills a device, the service drops it from the ring — its cache dies
/// with it, its keyspace migrates to the ring successors — and the request
/// itself completes through the solver's re-partition/CPU-failover ladder,
/// flagged degraded. Thread-safe; solves are serialised (the whole device
/// set cooperates on each one).
class ShardedSolveService {
 public:
  explicit ShardedSolveService(ShardServiceConfig config = {});

  /// Admits, routes and (cache miss) executes one request — via the
  /// admission scheduler, like every other submission.
  api::SolveResult submit(const api::SolveRequest& request);

  /// Batch fan-in: admits every request, pushes the admitted ones through
  /// the admission scheduler and executes them in *policy* order (EDF
  /// deadlines, WFQ tenant fairness). Results return in request order;
  /// a request the scheduler refuses or quota-sheds completes
  /// kQueueFull, typed, without running.
  std::vector<api::SolveResult> submit_all(
      std::vector<api::SolveRequest> requests);

  /// The admission scheduler (depth/audit introspection in tests).
  const serve::sched::Scheduler<std::size_t>& scheduler() const noexcept {
    return *scheduler_;
  }

  /// Home device the ring currently assigns to `request` (kNoHome when
  /// every device is dead).
  static constexpr std::size_t kNoHome = static_cast<std::size_t>(-1);
  std::size_t home_of(const api::SolveRequest& request);

  ShardServiceReport report() const;

  const serve::PlanCache& plans() const noexcept { return plans_; }
  ShardedSolver& solver() noexcept { return solver_; }

 private:
  struct DeviceCache {
    std::map<std::uint64_t, std::shared_ptr<const api::SolveResult>> entries;
    std::deque<std::uint64_t> order;  ///< FIFO eviction
  };

  void note_deaths_locked();
  /// Validation + lint; returns the typed rejection, nullopt when admitted.
  std::optional<api::SolveResult> admission_error(
      const api::SolveRequest& request);
  /// Fingerprint -> ring home -> cache hit or full sharded solve.
  api::SolveResult route_and_solve(const api::SolveRequest& request);

  ShardServiceConfig config_;
  ShardedSolver solver_;
  serve::PlanCache plans_;
  serve::FingerprintCache fingerprints_;
  std::unique_ptr<serve::sched::Scheduler<std::size_t>> scheduler_;
  std::mutex sched_mutex_;  ///< serialises push/drain waves on scheduler_

  mutable std::mutex mutex_;
  HashRing ring_;
  std::vector<DeviceCache> caches_;   ///< indexed by device id
  std::vector<DeviceStats> devices_;  ///< indexed by device id
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t computed_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t cpu_failovers_ = 0;
};

}  // namespace pw::shard
