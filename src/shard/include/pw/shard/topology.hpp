#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "pw/decomp/halo_plan.hpp"
#include "pw/lint/diagnostic.hpp"
#include "pw/stencil/spec.hpp"
#include "pw/xfer/event_graph.hpp"

namespace pw::shard {

/// How simulated devices reach each other's halo buffers. The paper's
/// boards sit on PCIe with no direct link, so every halo hop bounces
/// through host memory (a D2H DMA on the sender plus an H2D DMA on the
/// receiver); NVLink/MI-bridge-class parts get a single direct hop at
/// higher bandwidth.
enum class Interconnect {
  kPcieHostBounce,   ///< src D2H -> host buffer -> dst H2D, two DMA hops
  kDeviceToDevice,   ///< one direct src -> dst hop over the device link
};

const char* to_string(Interconnect interconnect);

/// Inverse of to_string plus the CLI short forms: "pcie" / "d2d".
std::optional<Interconnect> parse_interconnect(std::string_view name);

/// Bandwidth/latency knobs of the exchange cost model. Defaults sketch the
/// paper's era: PCIe gen3 x16 effective ~12.5 GB/s per direction, a direct
/// device link at twice that, and a few microseconds of per-message setup.
struct InterconnectModel {
  Interconnect kind = Interconnect::kPcieHostBounce;
  double pcie_gbytes_per_s = 12.5;  ///< host-bounce hop bandwidth, per hop
  double d2d_gbytes_per_s = 25.0;   ///< direct device-to-device bandwidth
  double message_latency_s = 5e-6;  ///< DMA descriptor setup per message

  /// Wire time of one `bytes`-sized hop under this model (setup + payload).
  double hop_seconds(std::size_t bytes) const;
};

/// Modelled cost of one bulk-synchronous halo exchange, scheduled over one
/// xfer::EventScheduler per device (in-order DMA queues, exactly how the
/// paper's host code drives OpenCL buffers). Self-messages — periodic wraps
/// on degenerate process grids — cross no link and cost nothing.
struct ExchangeCost {
  double seconds = 0.0;       ///< critical-path exchange time per step
  double send_phase_s = 0.0;  ///< slowest device's outbound DMA makespan
  double recv_phase_s = 0.0;  ///< slowest inbound makespan (0 for d2d)
  std::size_t bytes = 0;      ///< cross-device payload, all fields
  std::size_t messages = 0;   ///< cross-device messages (per field set)
  std::size_t hops = 0;       ///< DMA commands scheduled across all devices
};

/// Schedules `plan`'s cross-device messages (each carrying `fields` fields'
/// worth of its cells) over per-device in-order DMA engines and returns the
/// critical path. PCIe host-bounce runs two phases — every sender drains
/// its D2H queue, then every receiver its H2D queue — so
/// seconds = max(send makespan) + max(recv makespan); device-to-device is
/// the single-phase max. `devices` must cover every rank in the plan.
ExchangeCost model_exchange(const decomp::HaloPlan& plan, std::size_t fields,
                            const InterconnectModel& model,
                            std::size_t devices);

/// Fields one halo exchange must move per sweep of `spec`: the fields the
/// kernel writes (and therefore invalidates in its neighbours' halos).
/// Derived from the declared spec — advect_pw and diffusion update all
/// three wind fields, poisson_jacobi only the guess — instead of the
/// hardcoded 3 the first scale-out projection assumed for every kernel.
std::size_t halo_exchange_fields(const stencil::StencilSpec& spec);

/// Bytes one halo exchange of `spec` moves per sweep across all ranks:
/// halo_exchange_bytes_per_field() scaled by the kernel's exchanged-field
/// count (not by a hardcoded 3).
std::size_t halo_traffic_bytes_per_sweep(
    const decomp::Decomposition& decomposition,
    const stencil::StencilSpec& spec);

/// Static verification of an exchange graph against its decomposition —
/// run before any sharded solve, like pw::lint's pipeline battery before a
/// kernel run. Checks (dotted rule ids, all errors when violated):
///   shard.exchange.coverage  every rank receives exactly one message per
///                            halo piece (the 8 pieces tile its perimeter)
///   shard.exchange.owner     every message's src is the periodic neighbour
///                            that owns the piece
///   shard.exchange.cells     every message carries exactly the piece's
///                            face/corner cell count
///   shard.exchange.bytes     plan bytes/field equals the decomposition's
///                            halo_exchange_bytes_per_field()
/// plus an info diagnostic with the cross-device message fraction.
lint::LintReport lint_exchange(const decomp::Decomposition& decomposition,
                               const decomp::HaloPlan& plan);

/// CPU time of the calling thread (CLOCK_THREAD_CPUTIME_ID where
/// available). Sharded benches measure per-shard compute with this instead
/// of wall clock so scaling efficiency is meaningful on hosts with fewer
/// cores than shards (shard threads time-slicing one core inflate each
/// other's wall time but not their CPU time).
double thread_cpu_seconds();

}  // namespace pw::shard
