#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pw/api/request.hpp"
#include "pw/api/solver.hpp"
#include "pw/decomp/decomposition.hpp"
#include "pw/obs/metrics.hpp"
#include "pw/shard/topology.hpp"

namespace pw::shard {

/// Tuning of one sharded solver: how many simulated device instances to
/// partition the grid over, how their halo traffic is costed, and how a
/// dead device is handled.
struct ShardOptions {
  /// Simulated device instances. The decomposition is auto_grid(dims,
  /// devices); when that cannot tile the grid (a prime count on a narrow
  /// grid), the solver steps the count down until it fits.
  std::size_t devices = 2;

  /// Interconnect topology + bandwidth/latency knobs for the modelled
  /// exchange cost (the compute and the exchanged bytes are measured; the
  /// wire time of the simulated links is modelled, like ocl::DeviceTiming).
  InterconnectModel interconnect;

  /// Resilience: when a device faults (its `shard.<id>.*` site armed with a
  /// hard kind), re-partition over the survivors and re-run; with no
  /// survivors left, fall back to a single-device CPU solve. Either path
  /// flags the result degraded. Disabled, the fault surfaces as
  /// kBackendFault.
  bool failover = true;

  /// External metrics sink; the solver uses a private registry when null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What one sharded solve actually did — the measured quantities the
/// scale-out bench gates on, plus enough structure for per-shard counters.
struct ShardRunReport {
  std::size_t devices_configured = 0;  ///< ShardOptions::devices
  std::size_t devices_used = 0;        ///< shards in the final partition
  std::size_t px = 0, py = 0;          ///< final process grid
  std::size_t sweeps = 0;              ///< stencil sweeps executed
  std::size_t exchanges = 0;           ///< halo exchanges performed
  std::size_t exchanged_fields = 0;    ///< fields per exchange (spec-derived)
  std::uint64_t halo_bytes = 0;        ///< cross-device bytes, all exchanges
  std::uint64_t halo_messages = 0;     ///< cross-device messages
  double exchange_model_s = 0.0;       ///< modelled wire time, all exchanges
  double exchange_wall_s = 0.0;        ///< measured host copy time
  /// Per-shard compute: thread CPU seconds of each shard's pass thread
  /// (index = position in the final partition, not device id).
  std::vector<double> shard_cpu_s;
  std::vector<std::size_t> shard_device;  ///< device id per partition slot
  double max_shard_cpu_s = 0.0;  ///< slowest shard (compute critical path)
  double sum_shard_cpu_s = 0.0;  ///< total compute across shards
  /// Simulated cluster step time: compute critical path + exchange wire
  /// time. The scaling bench's efficiency numerator/denominator.
  double critical_path_s = 0.0;
  std::size_t repartitions = 0;   ///< device deaths survived
  bool cpu_failover = false;      ///< ladder bottomed out on the CPU path
};

/// Executes one solve across N simulated device shards: partition via
/// decomp::Decomposition (X/Y planes, full z columns, 1-deep halos — the
/// paper's Fig. 4 chunk-halo scheme lifted from on-chip chunks to devices),
/// scatter interiors, exchange halos per sweep through the HaloPlan (cost
/// modelled over per-device DMA schedulers), run the kernel's stencil pass
/// per shard on its own engine instance, gather. Results are bit-exact with
/// the single-device pw::api::Solver for every registered kernel and every
/// backend, which the shard differential battery asserts.
///
/// Fault sites, consulted per shard: `shard.<device>.pass` before each
/// shard's sweep pass and `shard.<device>.exchange` before copying halos
/// into that device. Device ids are persistent across re-partitions, so a
/// permanent rule keeps killing the same simulated device while survivors
/// keep their identity (and their fault history).
class ShardedSolver {
 public:
  explicit ShardedSolver(ShardOptions options = {});

  const ShardOptions& options() const noexcept { return options_; }
  ShardOptions& options() noexcept { return options_; }

  /// Blocking sharded solve. Never throws on bad options — returns a typed
  /// error like the single-device facade. Not thread-safe: one solve at a
  /// time (the whole simulated device set cooperates on each solve).
  api::SolveResult solve(const api::SolveRequest& request);

  /// The measured report of the most recent solve() (valid until the next).
  const ShardRunReport& last_report() const noexcept { return report_; }

  /// Devices marked dead by faults so far; dead devices stay dead across
  /// solves (a killed simulated board does not heal between requests).
  std::size_t dead_devices() const noexcept;

  obs::MetricsRegistry& metrics() noexcept { return *metrics_; }

 private:
  api::SolveResult run_partition(const api::SolveRequest& request,
                                 const std::vector<std::size_t>& devices,
                                 std::size_t& faulted_device);

  ShardOptions options_;
  obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;
  std::vector<bool> dead_;  ///< indexed by device id
  ShardRunReport report_;
};

}  // namespace pw::shard
