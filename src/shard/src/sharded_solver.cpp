#include "pw/shard/sharded_solver.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "pw/fault/injector.hpp"
#include "pw/stencil/advect.hpp"
#include "pw/stencil/diffusion.hpp"
#include "pw/stencil/poisson.hpp"
#include "pw/util/timer.hpp"

namespace pw::shard {

namespace {

constexpr std::size_t kNoDevice = std::numeric_limits<std::size_t>::max();

/// Device id out of a "shard.<id>.<op>" fault site (kNoDevice otherwise).
std::size_t device_of_site(const std::string& site) {
  if (site.rfind("shard.", 0) != 0) {
    return kNoDevice;
  }
  try {
    return std::stoul(site.substr(6));
  } catch (const std::exception&) {
    return kNoDevice;
  }
}

/// Backend -> stencil engine, the same mapping the single-device facade
/// applies (api/src/solver.cpp engine_for) so a sharded solve runs the
/// identical engine per shard that the whole-grid solve would run once.
stencil::EngineConfig engine_for(const api::SolverOptions& options) {
  stencil::EngineConfig config;
  config.chunk_y = options.kernel.chunk_y;
  switch (options.backend.backend()) {
    case api::Backend::kReference:
      config.engine = stencil::Engine::kReference;
      break;
    case api::Backend::kCpuBaseline:
      config.engine = stencil::Engine::kThreaded;
      config.threads =
          options.backend.get_if<api::CpuBaselineOptions>()->threads;
      break;
    case api::Backend::kFused:
      config.engine = stencil::Engine::kFused;
      break;
    case api::Backend::kMultiKernel:
      config.engine = stencil::Engine::kMultiInstance;
      config.instances =
          options.backend.get_if<api::MultiKernelOptions>()->kernels;
      break;
    case api::Backend::kHostOverlap:
      config.engine = stencil::Engine::kChunkedHost;
      config.x_chunks = options.backend.get_if<api::HostOptions>()->x_chunks;
      break;
    case api::Backend::kVectorized:
      config.engine = stencil::Engine::kLaneBatched;
      config.lanes = options.backend.get_if<api::VectorizedOptions>()->lanes;
      break;
  }
  return config;
}

const stencil::StencilSpec& spec_for(api::Kernel kernel) {
  switch (kernel) {
    case api::Kernel::kAdvectPw:
      return stencil::advect_spec();
    case api::Kernel::kDiffusion:
      return stencil::diffusion_spec();
    case api::Kernel::kPoissonJacobi:
      return stencil::poisson_spec();
  }
  return stencil::advect_spec();
}

/// One simulated device's slice of the solve.
struct Shard {
  std::size_t device = 0;
  decomp::RankExtent extent;
  grid::WindState state;
  advect::SourceTerms out;

  Shard(std::size_t device_id, const decomp::RankExtent& e, std::size_t nz)
      : device(device_id),
        extent(e),
        state({e.nx(), e.ny(), nz}),
        out({e.nx(), e.ny(), nz}) {}
};

void copy_interior(const grid::FieldD& src, const decomp::RankExtent& e,
                   grid::FieldD& dst) {
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(e.nx()); ++i) {
    for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(e.ny());
         ++j) {
      for (std::ptrdiff_t k = 0;
           k < static_cast<std::ptrdiff_t>(src.dims().nz); ++k) {
        dst.at(i, j, k) =
            src.at(static_cast<std::ptrdiff_t>(e.x_begin) + i,
                   static_cast<std::ptrdiff_t>(e.y_begin) + j, k);
      }
    }
  }
}

void gather_interior(const grid::FieldD& src, const decomp::RankExtent& e,
                     grid::FieldD& dst) {
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(e.nx()); ++i) {
    for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(e.ny());
         ++j) {
      for (std::ptrdiff_t k = 0;
           k < static_cast<std::ptrdiff_t>(dst.dims().nz); ++k) {
        dst.at(static_cast<std::ptrdiff_t>(e.x_begin) + i,
               static_cast<std::ptrdiff_t>(e.y_begin) + j, k) =
            src.at(i, j, k);
      }
    }
  }
}

/// The halo cells one piece covers, in dst-local coordinates: faces sweep
/// their edge, corners are single columns — exactly the cells the matching
/// HaloMessage accounts.
void piece_cells_local(decomp::HaloPiece piece, std::size_t nx,
                       std::size_t ny,
                       std::vector<std::pair<std::ptrdiff_t, std::ptrdiff_t>>&
                           cells) {
  cells.clear();
  const auto snx = static_cast<std::ptrdiff_t>(nx);
  const auto sny = static_cast<std::ptrdiff_t>(ny);
  switch (piece) {
    case decomp::HaloPiece::kWest:
      for (std::ptrdiff_t j = 0; j < sny; ++j) cells.emplace_back(-1, j);
      break;
    case decomp::HaloPiece::kEast:
      for (std::ptrdiff_t j = 0; j < sny; ++j) cells.emplace_back(snx, j);
      break;
    case decomp::HaloPiece::kSouth:
      for (std::ptrdiff_t i = 0; i < snx; ++i) cells.emplace_back(i, -1);
      break;
    case decomp::HaloPiece::kNorth:
      for (std::ptrdiff_t i = 0; i < snx; ++i) cells.emplace_back(i, sny);
      break;
    case decomp::HaloPiece::kSouthWest:
      cells.emplace_back(-1, -1);
      break;
    case decomp::HaloPiece::kSouthEast:
      cells.emplace_back(snx, -1);
      break;
    case decomp::HaloPiece::kNorthWest:
      cells.emplace_back(-1, sny);
      break;
    case decomp::HaloPiece::kNorthEast:
      cells.emplace_back(snx, sny);
      break;
  }
}

/// One bulk-synchronous halo exchange over `plan`: for every message, copy
/// the owning shard's interior columns into the receiving shard's halo.
/// Under the periodic rule global-edge halos wrap (matching
/// exchange_halo_periodic_xy on the whole grid); under Dirichlet they stay
/// at the zero the shard fields were constructed with. `fields` selects
/// which of u/v/w move — the kernel's written fields, derived from its
/// spec. Consults `shard.<device>.exchange` once per receiving device.
void exchange_halos(const decomp::Decomposition& decomposition,
                    const decomp::HaloPlan& plan, std::vector<Shard>& shards,
                    const std::vector<grid::FieldD grid::WindState::*>& fields,
                    stencil::BoundaryRule rule) {
  const auto NX = static_cast<std::ptrdiff_t>(decomposition.global_dims().nx);
  const auto NY = static_cast<std::ptrdiff_t>(decomposition.global_dims().ny);
  const auto nz = static_cast<std::ptrdiff_t>(decomposition.global_dims().nz);
  const bool periodic = rule == stencil::BoundaryRule::kPeriodicXY_RigidZ;

  for (Shard& shard : shards) {
    fault::throw_if("shard." + std::to_string(shard.device) + ".exchange");
  }

  std::vector<std::pair<std::ptrdiff_t, std::ptrdiff_t>> cells;
  for (const decomp::HaloMessage& message : plan.messages) {
    Shard& dst = shards[message.dst];
    piece_cells_local(message.piece, dst.extent.nx(), dst.extent.ny(), cells);
    for (const auto& [li, lj] : cells) {
      std::ptrdiff_t gx = static_cast<std::ptrdiff_t>(dst.extent.x_begin) + li;
      std::ptrdiff_t gy = static_cast<std::ptrdiff_t>(dst.extent.y_begin) + lj;
      if (!periodic && (gx < 0 || gx >= NX || gy < 0 || gy >= NY)) {
        continue;  // Dirichlet: true domain edges keep their zero halos
      }
      gx = (gx + NX) % NX;
      gy = (gy + NY) % NY;
      const Shard& src = shards[message.src];
      const auto si = gx - static_cast<std::ptrdiff_t>(src.extent.x_begin);
      const auto sj = gy - static_cast<std::ptrdiff_t>(src.extent.y_begin);
      for (grid::FieldD grid::WindState::* field : fields) {
        grid::FieldD& d = dst.state.*field;
        const grid::FieldD& s = src.state.*field;
        for (std::ptrdiff_t k = 0; k < nz; ++k) {
          d.at(li, lj, k) = s.at(si, sj, k);
        }
      }
    }
  }
}

}  // namespace

ShardedSolver::ShardedSolver(ShardOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &own_metrics_) {
  dead_.assign(std::max<std::size_t>(1, options_.devices), false);
}

std::size_t ShardedSolver::dead_devices() const noexcept {
  std::size_t count = 0;
  for (const bool dead : dead_) {
    count += dead ? 1 : 0;
  }
  return count;
}

api::SolveResult ShardedSolver::run_partition(
    const api::SolveRequest& request, const std::vector<std::size_t>& devices,
    std::size_t& faulted_device) {
  faulted_device = kNoDevice;
  const api::SolverOptions& options = request.options;
  const api::Kernel kernel = options.kernel_spec.kernel();
  const stencil::StencilSpec& spec = spec_for(kernel);
  const grid::WindState& state = *request.state;
  const grid::GridDims dims = state.u.dims();

  // Largest prefix of the alive devices the grid can actually be tiled
  // over (auto_grid refuses partitions that would leave a rank empty).
  std::size_t used = devices.size();
  std::unique_ptr<decomp::Decomposition> decomposition;
  while (used >= 1) {
    try {
      decomposition = std::make_unique<decomp::Decomposition>(
          decomp::Decomposition::auto_grid(dims, used));
      break;
    } catch (const std::invalid_argument&) {
      --used;
    }
  }
  if (!decomposition) {
    return api::error_result(api::SolveError::kEmptyGrid,
                             options.backend.backend(),
                             "grid cannot be partitioned over any shard");
  }

  const decomp::HaloPlan plan = decomp::build_halo_plan(*decomposition);
  const lint::LintReport exchange_lint = lint_exchange(*decomposition, plan);
  if (!exchange_lint.passed()) {
    return api::error_result(api::SolveError::kRejectedByLint,
                             options.backend.backend(),
                             exchange_lint.summary());
  }

  report_.devices_used = used;
  report_.px = decomposition->px();
  report_.py = decomposition->py();

  std::vector<Shard> shards;
  shards.reserve(used);
  for (std::size_t slot = 0; slot < used; ++slot) {
    shards.emplace_back(devices[slot], decomposition->extent(slot), dims.nz);
  }
  report_.shard_cpu_s.assign(used, 0.0);
  report_.shard_device.clear();
  for (const Shard& shard : shards) {
    report_.shard_device.push_back(shard.device);
  }

  // Scatter: interiors only. Halos are filled by the exchange under the
  // kernel's declared boundary rule, so the sharded pass reads exactly what
  // the whole-grid pass reads.
  const bool poisson = kernel == api::Kernel::kPoissonJacobi;
  for (Shard& shard : shards) {
    copy_interior(state.u, shard.extent, shard.state.u);
    copy_interior(state.v, shard.extent, shard.state.v);
    if (!poisson) {
      copy_interior(state.w, shard.extent, shard.state.w);
    }
  }

  // Which fields each exchange must refresh: the kernel's written fields
  // (spec.fields_out). For Jacobi only the guess (u) changes per sweep; the
  // rhs (v) never moves after the scatter.
  std::vector<grid::FieldD grid::WindState::*> exchanged;
  exchanged.push_back(&grid::WindState::u);
  if (halo_exchange_fields(spec) >= 3) {
    exchanged.push_back(&grid::WindState::v);
    exchanged.push_back(&grid::WindState::w);
  }
  report_.exchanged_fields = exchanged.size();

  const ExchangeCost per_exchange =
      model_exchange(plan, exchanged.size(), options_.interconnect, used);

  std::size_t sweeps = 1;
  if (poisson) {
    const auto* poisson_options =
        options.kernel_spec.get_if<api::PoissonOptions>();
    sweeps = std::max<std::size_t>(1, poisson_options->iterations);
  }

  const stencil::EngineConfig engine = engine_for(options);
  util::WallTimer exchange_timer;
  double exchange_wall = 0.0;

  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    exchange_timer.reset();
    try {
      exchange_halos(*decomposition, plan, shards, exchanged, spec.boundary);
    } catch (const fault::FaultError& error) {
      const std::size_t device = device_of_site(error.site());
      faulted_device = device != kNoDevice ? device : shards.front().device;
      return api::error_result(api::SolveError::kBackendFault,
                               options.backend.backend(), error.what());
    }
    exchange_wall += exchange_timer.seconds();
    ++report_.exchanges;
    report_.halo_bytes += per_exchange.bytes;
    report_.halo_messages += per_exchange.messages;
    report_.exchange_model_s += per_exchange.seconds;

    // One pass per shard, each on its own thread — the simulated device
    // instances compute concurrently, like the paper's one-rank-per-board
    // deployment. Faults are captured per shard and re-raised after the
    // join so a dying device cannot leave detached threads behind.
    std::vector<std::exception_ptr> errors(used);
    std::vector<std::thread> threads;
    threads.reserve(used);
    for (std::size_t slot = 0; slot < used; ++slot) {
      threads.emplace_back([&, slot] {
        const double cpu_begin = thread_cpu_seconds();
        try {
          Shard& shard = shards[slot];
          fault::throw_if("shard." + std::to_string(shard.device) + ".pass");
          switch (kernel) {
            case api::Kernel::kAdvectPw: {
              const stencil::AdvectOp op(*request.coefficients, dims.nz);
              stencil::run_pass(stencil::advect_spec(), shard.state,
                                shard.out, op, engine);
              break;
            }
            case api::Kernel::kDiffusion: {
              const stencil::DiffusionOp op(
                  *options.kernel_spec.get_if<api::DiffusionOptions>());
              stencil::run_pass(stencil::diffusion_spec(), shard.state,
                                shard.out, op, engine);
              break;
            }
            case api::Kernel::kPoissonJacobi:
              stencil::run_poisson_sweep(
                  shard.state,
                  *options.kernel_spec.get_if<api::PoissonOptions>(),
                  shard.out, engine);
              break;
          }
        } catch (...) {
          errors[slot] = std::current_exception();
        }
        report_.shard_cpu_s[slot] += thread_cpu_seconds() - cpu_begin;
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (std::size_t slot = 0; slot < used; ++slot) {
      if (!errors[slot]) {
        continue;
      }
      faulted_device = shards[slot].device;
      try {
        std::rethrow_exception(errors[slot]);
      } catch (const std::exception& error) {
        return api::error_result(api::SolveError::kBackendFault,
                                 options.backend.backend(), error.what());
      }
    }

    if (poisson) {
      // The sweep's output becomes the next sweep's guess; its halo
      // refresh happens at the top of the next iteration's exchange.
      for (Shard& shard : shards) {
        for (std::ptrdiff_t i = 0;
             i < static_cast<std::ptrdiff_t>(shard.extent.nx()); ++i) {
          for (std::ptrdiff_t j = 0;
               j < static_cast<std::ptrdiff_t>(shard.extent.ny()); ++j) {
            for (std::ptrdiff_t k = 0;
                 k < static_cast<std::ptrdiff_t>(dims.nz); ++k) {
              shard.state.u.at(i, j, k) = shard.out.su.at(i, j, k);
            }
          }
        }
      }
    }
  }
  report_.exchange_wall_s = exchange_wall;
  report_.sweeps = sweeps;

  auto terms = std::make_shared<advect::SourceTerms>(dims);
  for (const Shard& shard : shards) {
    if (poisson) {
      gather_interior(shard.state.u, shard.extent, terms->su);
    } else {
      gather_interior(shard.out.su, shard.extent, terms->su);
      gather_interior(shard.out.sv, shard.extent, terms->sv);
      gather_interior(shard.out.sw, shard.extent, terms->sw);
    }
  }

  for (std::size_t slot = 0; slot < used; ++slot) {
    const double cpu = report_.shard_cpu_s[slot];
    report_.max_shard_cpu_s = std::max(report_.max_shard_cpu_s, cpu);
    report_.sum_shard_cpu_s += cpu;
    const std::string prefix =
        "shard." + std::to_string(shards[slot].device);
    metrics_->counter_add(prefix + ".passes", sweeps);
    metrics_->gauge_set(prefix + ".cpu_s", cpu);
  }
  report_.critical_path_s =
      report_.max_shard_cpu_s + report_.exchange_model_s;
  metrics_->counter_add("shard.exchanges", report_.exchanges);
  metrics_->counter_add("shard.halo_bytes", report_.halo_bytes);
  metrics_->counter_add("shard.halo_messages", report_.halo_messages);
  metrics_->gauge_set("shard.devices_used", static_cast<double>(used));
  metrics_->gauge_set("shard.exchange_model_s", report_.exchange_model_s);
  metrics_->gauge_set("shard.critical_path_s", report_.critical_path_s);

  api::SolveResult result;
  result.backend = options.backend.backend();
  result.terms = std::move(terms);
  return result;
}

api::SolveResult ShardedSolver::solve(const api::SolveRequest& request) {
  report_ = ShardRunReport{};
  report_.devices_configured = options_.devices;
  if (dead_.size() < options_.devices) {
    dead_.resize(options_.devices, false);
  }

  const api::SolverOptions& options = request.options;
  const api::Backend backend = options.backend.backend();
  if (!request.state) {
    return api::error_result(api::SolveError::kEmptyGrid, backend,
                             "request carries no wind state");
  }
  if (options.kernel_spec.kernel() == api::Kernel::kAdvectPw &&
      !request.coefficients) {
    return api::error_result(api::SolveError::kEmptyGrid, backend,
                             "advection request carries no coefficients");
  }
  const grid::GridDims dims = request.state->u.dims();
  const api::SolveError invalid = api::validate(options, dims);
  if (invalid != api::SolveError::kNone) {
    return api::error_result(invalid, backend, api::describe(invalid));
  }
  if (request.state->u.halo() != 1) {
    return api::error_result(api::SolveError::kHaloMismatch, backend,
                             api::describe(api::SolveError::kHaloMismatch));
  }

  std::vector<std::size_t> alive;
  for (std::size_t device = 0; device < options_.devices; ++device) {
    if (!dead_[device]) {
      alive.push_back(device);
    }
  }

  util::WallTimer timer;
  std::uint32_t attempts = 0;
  while (!alive.empty()) {
    ++attempts;
    std::size_t faulted = kNoDevice;
    api::SolveResult result = run_partition(request, alive, faulted);
    if (faulted == kNoDevice) {
      if (result.ok()) {
        result.seconds = timer.seconds();
        const double flops = static_cast<double>(
            api::total_flops(options.kernel_spec, dims));
        result.gflops =
            result.seconds > 0.0 ? flops / result.seconds / 1e9 : 0.0;
        result.attempts = attempts;
        // Degraded means a fault reduced the device set, not that the grid
        // happened to tile over fewer shards than configured.
        result.degraded = dead_devices() > 0;
        result.metrics = metrics_->snapshot();
      }
      return result;
    }
    // A simulated board died mid-solve. Mark it dead for good, surface the
    // event, and (when allowed) re-partition the grid over the survivors
    // and restart the solve from the pristine request — restarts are
    // deterministic because nothing of the failed attempt escapes.
    dead_[faulted] = true;
    alive.erase(std::remove(alive.begin(), alive.end(), faulted),
                alive.end());
    ++report_.repartitions;
    metrics_->counter_add("shard." + std::to_string(faulted) + ".faults");
    metrics_->counter_add("shard.deaths");
    if (!options_.failover) {
      return api::error_result(
          api::SolveError::kBackendFault, backend,
          "shard " + std::to_string(faulted) + " faulted mid-solve");
    }
  }

  // Every simulated device is dead: bottom of the ladder, one plain CPU
  // solve (the same terminal rung the serve layer uses).
  if (!options_.failover) {
    return api::error_result(api::SolveError::kBackendFault, backend,
                             "no shard devices alive");
  }
  report_.cpu_failover = true;
  metrics_->counter_add("shard.cpu_failovers");
  api::SolveRequest fallback = request;
  fallback.options.backend = api::Backend::kCpuBaseline;
  api::Solver cpu;
  api::SolveResult result = cpu.solve(fallback);
  result.degraded = true;
  result.attempts += attempts;
  result.metrics = metrics_->snapshot();
  return result;
}

}  // namespace pw::shard
