#include "pw/shard/topology.hpp"

#include <algorithm>
#include <ctime>
#include <map>
#include <string>
#include <utility>

namespace pw::shard {

const char* to_string(Interconnect interconnect) {
  switch (interconnect) {
    case Interconnect::kPcieHostBounce:
      return "pcie_host_bounce";
    case Interconnect::kDeviceToDevice:
      return "device_to_device";
  }
  return "unknown";
}

std::optional<Interconnect> parse_interconnect(std::string_view name) {
  if (name == "pcie_host_bounce" || name == "pcie") {
    return Interconnect::kPcieHostBounce;
  }
  if (name == "device_to_device" || name == "d2d") {
    return Interconnect::kDeviceToDevice;
  }
  return std::nullopt;
}

double InterconnectModel::hop_seconds(std::size_t bytes) const {
  const double rate = kind == Interconnect::kPcieHostBounce
                          ? pcie_gbytes_per_s
                          : d2d_gbytes_per_s;
  return message_latency_s + static_cast<double>(bytes) / (rate * 1e9);
}

ExchangeCost model_exchange(const decomp::HaloPlan& plan, std::size_t fields,
                            const InterconnectModel& model,
                            std::size_t devices) {
  // One in-order DMA queue pair per device: kDeviceToHost carries outbound
  // halo pieces, kHostToDevice inbound ones. Commands on one engine
  // serialise (the paper's per-direction DMA engines), so a device sending
  // to three neighbours pays three back-to-back hops.
  std::vector<xfer::EventScheduler> schedulers(devices);
  ExchangeCost cost;
  for (const decomp::HaloMessage& message : plan.messages) {
    if (message.src == message.dst) {
      continue;  // periodic wrap within one device: a local memcpy
    }
    const std::size_t bytes = message.bytes() * fields;
    const double hop_s = model.hop_seconds(bytes);
    schedulers.at(message.src)
        .add({std::string("send:") + decomp::to_string(message.piece),
              xfer::Engine::kDeviceToHost, hop_s, {}});
    ++cost.hops;
    if (model.kind == Interconnect::kPcieHostBounce) {
      schedulers.at(message.dst)
          .add({std::string("recv:") + decomp::to_string(message.piece),
                xfer::Engine::kHostToDevice, hop_s, {}});
      ++cost.hops;
    }
    cost.bytes += bytes;
    ++cost.messages;
  }

  // Bulk-synchronous phases: all sends drain, then (host-bounce only) all
  // receives. The exchange's critical path is the slowest device per phase.
  for (const xfer::EventScheduler& scheduler : schedulers) {
    if (scheduler.size() == 0) {
      continue;
    }
    const xfer::Timeline timeline = scheduler.run();
    const double send_busy =
        timeline.engine_busy_s[static_cast<std::size_t>(
            xfer::Engine::kDeviceToHost)];
    const double recv_busy =
        timeline.engine_busy_s[static_cast<std::size_t>(
            xfer::Engine::kHostToDevice)];
    cost.send_phase_s = std::max(cost.send_phase_s, send_busy);
    cost.recv_phase_s = std::max(cost.recv_phase_s, recv_busy);
  }
  cost.seconds = cost.send_phase_s + cost.recv_phase_s;
  return cost;
}

std::size_t halo_exchange_fields(const stencil::StencilSpec& spec) {
  return spec.fields_out;
}

std::size_t halo_traffic_bytes_per_sweep(
    const decomp::Decomposition& decomposition,
    const stencil::StencilSpec& spec) {
  return decomposition.halo_exchange_bytes_per_field() *
         halo_exchange_fields(spec);
}

lint::LintReport lint_exchange(const decomp::Decomposition& decomposition,
                               const decomp::HaloPlan& plan) {
  lint::LintReport report;
  const std::size_t nz = decomposition.global_dims().nz;

  // Coverage: one message per (rank, piece), nothing missing or duplicated.
  std::map<std::pair<std::size_t, decomp::HaloPiece>, std::size_t> seen;
  for (const decomp::HaloMessage& message : plan.messages) {
    ++seen[{message.dst, message.piece}];
  }
  for (std::size_t rank = 0; rank < decomposition.ranks(); ++rank) {
    for (decomp::HaloPiece piece : decomp::kAllHaloPieces) {
      const std::size_t count = seen[{rank, piece}];
      if (count != 1) {
        report.diagnostics.push_back(
            {lint::Severity::kError, "shard.exchange.coverage",
             "rank " + std::to_string(rank), decomp::to_string(piece),
             count == 0 ? "halo piece has no message filling it"
                        : "halo piece is filled by " + std::to_string(count) +
                              " messages",
             "emit exactly one message per (rank, piece) in the plan"});
      }
    }
  }

  std::size_t cross_device = 0;
  for (const decomp::HaloMessage& message : plan.messages) {
    int dx = 0, dy = 0;
    decomp::halo_piece_offset(message.piece, dx, dy);
    const std::size_t owner =
        decomposition.neighbour(message.dst, dx, dy);
    if (message.src != owner) {
      report.diagnostics.push_back(
          {lint::Severity::kError, "shard.exchange.owner",
           "rank " + std::to_string(message.dst),
           decomp::to_string(message.piece),
           "message sourced from rank " + std::to_string(message.src) +
               " but the periodic neighbour owning this piece is rank " +
               std::to_string(owner),
           "source each piece from neighbour(dst, dx, dy) of its offset"});
    }
    const std::size_t expected = decomp::halo_piece_cells(
        message.piece, decomposition.extent(message.dst), nz);
    if (message.cells != expected) {
      report.diagnostics.push_back(
          {lint::Severity::kError, "shard.exchange.cells",
           "rank " + std::to_string(message.dst),
           decomp::to_string(message.piece),
           "message carries " + std::to_string(message.cells) +
               " cells; the piece has " + std::to_string(expected),
           "size face messages n*nz and corner messages nz"});
    }
    if (message.src != message.dst) {
      ++cross_device;
    }
  }

  const std::size_t plan_bytes = plan.bytes_per_field();
  const std::size_t decomp_bytes =
      decomposition.halo_exchange_bytes_per_field();
  if (plan_bytes != decomp_bytes) {
    report.diagnostics.push_back(
        {lint::Severity::kError, "shard.exchange.bytes", "", "",
         "plan moves " + std::to_string(plan_bytes) +
             " bytes/field but the decomposition accounts " +
             std::to_string(decomp_bytes),
         "keep build_halo_plan and halo_exchange_bytes_per_field in sync"});
  }

  if (!plan.messages.empty()) {
    report.diagnostics.push_back(
        {lint::Severity::kInfo, "shard.exchange.cross_device", "", "",
         std::to_string(cross_device) + " of " +
             std::to_string(plan.messages.size()) +
             " messages cross a device link (the rest are periodic wraps "
             "within one device)",
         ""});
  }
  return report;
}

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace pw::shard
