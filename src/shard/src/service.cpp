#include "pw/shard/service.hpp"

#include <algorithm>

namespace pw::shard {

namespace {

/// splitmix64 — the ring's vnode hash (fast, well-mixed, dependency-free).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t vnode_hash(std::size_t device, std::size_t vnode) {
  return mix64(mix64(static_cast<std::uint64_t>(device) + 1) ^
               static_cast<std::uint64_t>(vnode));
}

}  // namespace

void HashRing::add(std::size_t device) {
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    ring_.emplace(vnode_hash(device, v), device);
  }
  ++devices_;
}

void HashRing::remove(std::size_t device) {
  std::size_t erased = 0;
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    erased += ring_.erase(vnode_hash(device, v));
  }
  if (erased != 0) {
    --devices_;
  }
}

std::size_t HashRing::place(std::uint64_t key) const {
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

ShardedSolveService::ShardedSolveService(ShardServiceConfig config)
    : config_(std::move(config)),
      solver_(config_.shard),
      plans_(config_.admission),
      scheduler_(serve::sched::make_scheduler<std::size_t>(config_.sched)),
      ring_(config_.virtual_nodes) {
  const std::size_t devices = std::max<std::size_t>(1, config_.shard.devices);
  caches_.resize(devices);
  devices_.resize(devices);
  for (std::size_t device = 0; device < devices; ++device) {
    devices_[device].device = device;
    ring_.add(device);
  }
}

std::size_t ShardedSolveService::home_of(const api::SolveRequest& request) {
  const std::uint64_t key = mix64(fingerprints_.fingerprint(request));
  std::lock_guard lock(mutex_);
  return ring_.empty() ? kNoHome : ring_.place(key);
}

void ShardedSolveService::note_deaths_locked() {
  // Sync ring membership with the solver's dead set: a device that died
  // during the last solve leaves the ring, dropping its cache — the
  // keyspace migrates to its ring successors.
  for (std::size_t device = 0; device < devices_.size(); ++device) {
    if (!devices_[device].alive) {
      continue;
    }
    // The authoritative death signal is the solver's per-device fault
    // counter: it increments exactly when that simulated board was marked
    // dead mid-solve.
    const std::uint64_t faults = solver_.metrics().counter(
        "shard." + std::to_string(device) + ".faults");
    if (faults > 0) {
      devices_[device].alive = false;
      devices_[device].faults = faults;
      ring_.remove(device);
      caches_[device] = DeviceCache{};
    }
  }
}

std::optional<api::SolveResult> ShardedSolveService::admission_error(
    const api::SolveRequest& request) {
  {
    std::lock_guard lock(mutex_);
    ++submitted_;
  }

  // Admission: the same amortised lint battery the single-device service
  // runs, keyed per request shape.
  if (!request.state) {
    std::lock_guard lock(mutex_);
    ++rejected_;
    return api::error_result(api::SolveError::kEmptyGrid,
                             request.options.backend.backend(),
                             "request carries no wind state");
  }
  const grid::GridDims dims = request.state->u.dims();
  const auto plan = plans_.lookup(dims, request.options);
  if (!plan->admitted) {
    std::lock_guard lock(mutex_);
    ++rejected_;
    return api::error_result(api::SolveError::kRejectedByLint,
                             request.options.backend.backend(),
                             plan->rejection);
  }
  return std::nullopt;
}

api::SolveResult ShardedSolveService::submit(
    const api::SolveRequest& request) {
  // One request is a batch of one: the synchronous path transits the
  // admission scheduler exactly like a fan-in, so policy bookkeeping
  // (queued_for, audit) covers every submission path.
  return submit_all({request}).front();
}

std::vector<api::SolveResult> ShardedSolveService::submit_all(
    std::vector<api::SolveRequest> requests) {
  std::vector<api::SolveResult> results(requests.size());
  if (requests.empty()) {
    return results;
  }
  std::vector<char> settled(requests.size(), 0);
  std::vector<std::size_t> order;  ///< execution order, policy-chosen
  order.reserve(requests.size());
  {
    // Push/drain waves are serialised so a concurrent submit never pops
    // another batch's index; the scheduler stays the one shared instance.
    std::lock_guard sched_lock(sched_mutex_);
    std::size_t next = 0;
    while (next < requests.size()) {
      const api::SolveRequest& request = requests[next];
      if (auto rejection = admission_error(request)) {
        results[next] = std::move(*rejection);
        settled[next] = 1;
        ++next;
        continue;
      }
      serve::sched::Scheduled<std::size_t> item;
      item.meta.tenant =
          request.tenant.empty() ? std::string("default") : request.tenant;
      item.meta.priority = request.priority;
      if (request.timeout.count() > 0) {
        item.meta.deadline =
            std::chrono::steady_clock::now() + request.timeout;
      }
      item.value = next;
      std::vector<serve::sched::Scheduled<std::size_t>> evicted;
      const bool accepted = scheduler_->try_push(std::move(item), evicted);
      for (const serve::sched::Scheduled<std::size_t>& victim : evicted) {
        results[victim.value] = api::error_result(
            api::SolveError::kQueueFull,
            requests[victim.value].options.backend.backend(),
            "shed by quota: tenant " + victim.meta.tenant +
                " queued over its fair share");
        settled[victim.value] = 1;
        std::lock_guard lock(mutex_);
        ++shed_;
      }
      if (!accepted) {
        // Full of compliant traffic: drain a policy-ordered wave, retry.
        bool drained = false;
        while (auto popped = scheduler_->try_pop()) {
          order.push_back(popped->value);
          drained = true;
        }
        if (!drained) {
          results[next] = api::error_result(
              api::SolveError::kQueueFull,
              request.options.backend.backend(),
              "admission scheduler refused the request");
          settled[next] = 1;
          std::lock_guard lock(mutex_);
          ++shed_;
          ++next;
        }
        continue;
      }
      ++next;
    }
    while (auto popped = scheduler_->try_pop()) {
      order.push_back(popped->value);
    }
  }
  for (const std::size_t index : order) {
    if (!settled[index]) {
      results[index] = route_and_solve(requests[index]);
      settled[index] = 1;
    }
  }
  return results;
}

api::SolveResult ShardedSolveService::route_and_solve(
    const api::SolveRequest& request) {
  const std::uint64_t fingerprint = fingerprints_.fingerprint(request);
  const std::uint64_t key = mix64(fingerprint);

  // Route: home device by consistent hash; serve from its cache on a hit.
  {
    std::lock_guard lock(mutex_);
    if (!ring_.empty()) {
      const std::size_t home = ring_.place(key);
      ++devices_[home].admitted;
      auto& cache = caches_[home];
      const auto hit = cache.entries.find(fingerprint);
      if (hit != cache.entries.end()) {
        ++cache_hits_;
        ++completed_;
        ++devices_[home].cache_hits;
        ++devices_[home].completed;
        api::SolveResult result = *hit->second;
        result.cached = true;
        return result;
      }
    }
  }

  // Miss: the whole device set cooperates on the sharded solve. The solver
  // is internally serialised, so the service runs one solve at a time too.
  api::SolveResult result = solver_.solve(request);

  std::lock_guard lock(mutex_);
  ++computed_;
  const std::size_t deaths_before =
      static_cast<std::size_t>(std::count_if(
          devices_.begin(), devices_.end(),
          [](const DeviceStats& d) { return !d.alive; }));
  note_deaths_locked();
  const std::size_t deaths_after =
      static_cast<std::size_t>(std::count_if(
          devices_.begin(), devices_.end(),
          [](const DeviceStats& d) { return !d.alive; }));
  if (deaths_after > deaths_before && result.ok()) {
    ++failovers_;
  }
  if (solver_.last_report().cpu_failover) {
    ++cpu_failovers_;
  }
  if (result.ok()) {
    ++completed_;
    if (result.degraded) {
      ++degraded_;
    }
    if (!ring_.empty()) {
      // (Re-)place on the post-death ring: the home may have migrated.
      const std::size_t home = ring_.place(key);
      ++devices_[home].completed;
      auto& cache = caches_[home];
      if (cache.entries.emplace(fingerprint,
                                std::make_shared<api::SolveResult>(result))
              .second) {
        cache.order.push_back(fingerprint);
        while (cache.order.size() > config_.cache_capacity_per_device) {
          cache.entries.erase(cache.order.front());
          cache.order.pop_front();
        }
      }
    }
  }
  return result;
}

ShardServiceReport ShardedSolveService::report() const {
  std::lock_guard lock(mutex_);
  ShardServiceReport report;
  report.submitted = submitted_;
  report.completed = completed_;
  report.computed = computed_;
  report.cache_hits = cache_hits_;
  report.rejected = rejected_;
  report.shed = shed_;
  report.degraded = degraded_;
  report.failovers = failovers_;
  report.cpu_failovers = cpu_failovers_;
  report.devices = devices_;
  for (DeviceStats& device : report.devices) {
    device.cached_entries = caches_[device.device].entries.size();
  }
  return report;
}

util::Table to_table(const ShardServiceReport& report) {
  util::Table table("Sharded serving: per-device routing and failover");
  table.header({"device", "alive", "admitted", "completed", "cache_hits",
                "faults", "cached"});
  for (const DeviceStats& device : report.devices) {
    table.row({std::to_string(device.device), device.alive ? "yes" : "DEAD",
               std::to_string(device.admitted),
               std::to_string(device.completed),
               std::to_string(device.cache_hits),
               std::to_string(device.faults),
               std::to_string(device.cached_entries)});
  }
  table.row({"total",
             std::to_string(report.failovers) + " failovers",
             std::to_string(report.submitted),
             std::to_string(report.completed),
             std::to_string(report.cache_hits),
             std::to_string(report.cpu_failovers) + " cpu",
             std::to_string(report.rejected) + " rejected"});
  return table;
}

}  // namespace pw::shard
