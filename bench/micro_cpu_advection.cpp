// Measured-on-host CPU baseline scaling: the real threaded PW advection on
// this machine, across thread counts and grid sizes.
#include <benchmark/benchmark.h>

#include <memory>

#include "pw/advect/coefficients.hpp"
#include "pw/advect/cpu_baseline.hpp"
#include "pw/advect/flops.hpp"
#include "pw/advect/reference.hpp"
#include "pw/grid/init.hpp"
#include "pw/util/thread_pool.hpp"

namespace {

struct Fixture {
  explicit Fixture(pw::grid::GridDims dims) : state(dims), out(dims) {
    pw::grid::init_random(state, 11);
    coefficients = pw::advect::PwCoefficients::from_geometry(
        pw::grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
  }
  pw::grid::WindState state;
  pw::advect::PwCoefficients coefficients;
  pw::advect::SourceTerms out;
};

void BM_ReferenceSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f({n, n, 64});
  for (auto _ : state) {
    pw::advect::advect_reference(f.state, f.coefficients, f.out);
    benchmark::DoNotOptimize(f.out.su.raw().data());
  }
  const auto flops = pw::advect::total_flops(f.state.u.dims());
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(flops) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReferenceSerial)->Arg(32)->Arg(64);

void BM_CpuBaselineThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  Fixture f({128, 128, 64});
  pw::util::ThreadPool pool(threads);
  pw::advect::CpuAdvectorBaseline baseline(pool);
  for (auto _ : state) {
    baseline.run(f.state, f.coefficients, f.out);
    benchmark::DoNotOptimize(f.out.su.raw().data());
  }
  const auto flops = pw::advect::total_flops(f.state.u.dims());
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(flops) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CpuBaselineThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
