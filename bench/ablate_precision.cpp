// The paper's §V future-work study: reduced precision and fixed-point
// arithmetic "could reduce the amount of resource required for our shift
// buffers and advection calculations, as such enabling more kernels to be
// fitted onto the chip". Reports per-representation numerical error
// (measured by running the real datapath) next to projected resources,
// kernel fit and peak throughput.
#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/exp/devices.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/fpga/resource_estimate.hpp"
#include "pw/grid/init.hpp"
#include "pw/precision/reduced.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();

  // Numerical error measured on a real run (modest grid, random winds).
  const grid::GridDims dims{24, 24, 32};
  grid::WindState state(dims);
  grid::init_random(state, 4242);
  const auto coefficients = advect::PwCoefficients::from_geometry(
      grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));

  util::Table t(
      "Future work (paper SV): reduced precision — measured error vs "
      "projected resources and fit");
  t.header({"Representation", "max rel err", "RMS err", "Alveo kernels",
            "Alveo peak (GFLOPS)", "Stratix kernels",
            "Stratix peak (GFLOPS)"});

  kernel::KernelConfig config;
  config.chunk_y = 64;

  struct Variant {
    const char* label;
    std::optional<precision::Representation> representation;
    unsigned value_bits;
  };
  const Variant variants[] = {
      {"float64 (paper)", std::nullopt, 64},
      {"float32", precision::Representation::kFloat32, 32},
      {"fixed Q20.43", precision::Representation::kFixedQ43, 64},
      {"fixed Q31.32", precision::Representation::kFixedQ32, 64},
  };

  for (const Variant& variant : variants) {
    precision::ErrorStats error;
    if (variant.representation) {
      error = precision::evaluate(*variant.representation, state,
                                  coefficients, config);
    }

    fpga::KernelEstimateOptions options;
    options.nz = 64;
    options.value_bits = variant.value_bits;
    const auto xilinx_usage =
        fpga::estimate_kernel(config, options, fpga::Vendor::kXilinx);
    const auto intel_usage =
        fpga::estimate_kernel(config, options, fpga::Vendor::kIntel);
    const std::size_t alveo_fit =
        fpga::max_kernels(devices.alveo, xilinx_usage);
    const std::size_t stratix_fit =
        fpga::max_kernels(devices.stratix, intel_usage);

    auto peak = [&](const fpga::FpgaDeviceProfile& device, std::size_t fit) {
      return fpga::theoretical_gflops(64, device.clock_hz(fit), fit);
    };

    auto err = [](double v) {
      if (v == 0.0) {
        return std::string("exact ref");
      }
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.2e", v);
      return std::string(buffer);
    };

    t.row({variant.label, err(error.max_rel), err(error.rms),
           std::to_string(alveo_fit),
           util::format_double(peak(devices.alveo, alveo_fit), 1),
           std::to_string(stratix_fit),
           util::format_double(peak(devices.stratix, stratix_fit), 1)});
  }
  return bench::emit(t, cli);
}
