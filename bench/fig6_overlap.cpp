// Regenerates paper Fig. 6: overall performance including PCIe transfers,
// with X-chunked transfers overlapped against compute via the event
// scheduler (OpenCL events / CUDA streams analogue).
//
// Alongside the ASCII table, the run dumps a registry-backed JSON artefact
// (default BENCH_fig6.json): one gauge set per device/grid (GFLOPS and
// compute/transfer utilisation from the modelled schedule), plus real
// per-chunk write/kernel/read spans from an instrumented host-driver pass
// on a host-sized grid — the Fig. 6 overlap made observable.
#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/api/solver.hpp"
#include "pw/exp/experiments.hpp"
#include "pw/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();

  obs::MetricsRegistry registry;

  // The modelled Fig. 6 numbers, one gauge set per device/grid-size cell.
  for (const exp::DeviceRun& run : exp::overall_runs(devices, true)) {
    std::string prefix = "fig6." + run.device + "." +
                         util::format_cells(run.cells);
    for (char& c : prefix) {
      if (c == ' ') {
        c = '_';
      }
    }
    if (!run.available) {
      registry.gauge_set(prefix + ".available", 0.0);
      continue;
    }
    registry.gauge_set(prefix + ".available", 1.0);
    registry.gauge_set(prefix + ".gflops", run.gflops);
    registry.gauge_set(prefix + ".seconds", run.seconds);
    registry.gauge_set(prefix + ".compute_utilisation",
                       run.compute_utilisation);
    registry.gauge_set(prefix + ".transfer_utilisation",
                       run.transfer_utilisation);
    registry.gauge_set(prefix + ".memory_share", run.memory_share);
  }

  // A real (host-sized) instrumented overlapped run through the unified
  // solver API: per-chunk write/kernel/read spans land in the registry.
  {
    const grid::GridDims dims{64, 64, 32};
    grid::WindState state(dims);
    grid::init_taylor_green(state, 4.0);
    const auto coefficients = advect::PwCoefficients::from_geometry(
        grid::Geometry::uniform(dims, 100.0, 100.0, 50.0));

    api::SolverOptions options;
    api::HostOptions host;
    host.x_chunks = 8;
    host.overlapped = true;
    options.backend = host;
    options.kernel.chunk_y = 16;
    options.metrics = &registry;
    const auto result = api::AdvectionSolver(options).solve(state,
                                                            coefficients);
    if (!result.ok()) {
      std::cerr << "instrumented host run failed: " << result.message
                << "\n";
      return 1;
    }
  }

  const int status = bench::emit(exp::fig6(devices), cli);
  const int json_status =
      bench::emit_registry(registry, "BENCH_fig6.json", cli);
  return status != 0 ? status : json_status;
}
