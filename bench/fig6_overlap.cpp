// Regenerates paper Fig. 6: overall performance including PCIe transfers,
// with X-chunked transfers overlapped against compute via the event
// scheduler (OpenCL events / CUDA streams analogue).
#include "bench_common.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  return bench::emit(exp::fig6(exp::paper_devices()), cli);
}
