// Regenerates paper Fig. 5: overall performance including PCIe transfers,
// without transfer/compute overlap, across grid sizes and devices.
#include "bench_common.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  return bench::emit(exp::fig5(exp::paper_devices()), cli);
}
