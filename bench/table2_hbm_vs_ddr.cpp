// Regenerates paper Table II: single-kernel Alveo U280 performance using
// the on-chip HBM2 versus the on-board DDR-DRAM, across grid sizes.
#include "bench_common.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  return bench::emit(exp::table2(exp::paper_devices()), cli);
}
