// Derived artefact: energy-to-solution (J) per device and grid size for the
// overlapped runs — the product of Fig. 7's power and Fig. 6's runtime,
// the metric procurement actually cares about and the quantitative core of
// the paper's conclusion that the Alveo is "overall most power efficient".
#include "bench_common.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();

  util::Table t(
      "Energy to solution, joules per advection pass (overlapped runs; "
      "lower is better)");
  t.header({"Device", "16M", "67M", "268M", "536M"});

  const auto runs = exp::overall_runs(devices, /*overlapped=*/true);
  const auto sizes = exp::figure_grid_sizes();
  for (std::size_t d = 0; d < 4; ++d) {
    std::vector<std::string> cells{runs[d].device};
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const auto& run = runs[s * 4 + d];
      cells.push_back(run.available
                          ? util::format_double(run.power_w * run.seconds, 1)
                          : std::string("n/a"));
    }
    t.row(std::move(cells));
  }
  return bench::emit(t, cli);
}
