// Measured-on-host cost of the 512-bit packing the Xilinx frontend applies
// to external accesses (Vitis best practice).
#include <benchmark/benchmark.h>

#include <vector>

#include "pw/hls/wide_word.hpp"
#include "pw/util/rng.hpp"

namespace {

void BM_PackWords(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(count);
  pw::util::Rng rng(5);
  for (auto& v : values) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::vector<pw::hls::Word512> words(pw::hls::words_for<8>(count));
  for (auto _ : state) {
    auto n = pw::hls::pack_words<8>(values, words);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count) * 8);
}
BENCHMARK(BM_PackWords)->Arg(4096)->Arg(65536);

void BM_UnpackWords(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(count, 1.5);
  std::vector<pw::hls::Word512> words(pw::hls::words_for<8>(count));
  pw::hls::pack_words<8>(values, words);
  std::vector<double> out(count);
  for (auto _ : state) {
    auto n = pw::hls::unpack_words<8>(
        std::span<const pw::hls::Word512>(words), out);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count) * 8);
}
BENCHMARK(BM_UnpackWords)->Arg(4096)->Arg(65536);

}  // namespace
