// Ablation of the Y-chunk width (paper §III, Fig. 4 discussion): chunking
// decouples on-chip memory from the domain size at the cost of re-streamed
// halo columns and shorter external-memory bursts — "negligible performance
// impact" except for very small chunks of 8 or below.
#include "bench_common.hpp"
#include "pw/exp/devices.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/kernel/chunking.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();
  const grid::GridDims dims = grid::paper_grid(16);

  util::Table t(
      "Ablation: Y-chunk width vs single-kernel performance (16M cells)");
  t.header({"Chunk width", "Alveo U280 HBM2 (GFLOPS)",
            "Stratix 10 DDR (GFLOPS)", "Streamed overlap",
            "On-chip buffer (KB per kernel)"});

  for (std::size_t chunk : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    auto result = [&](const fpga::FpgaDeviceProfile& device) {
      fpga::KernelOnlyInput input;
      input.dims = dims;
      input.config.chunk_y = chunk;
      input.kernels = 1;
      input.clock_hz = device.clock_hz(1);
      input.memory = device.memories.front();
      input.launch_overhead_s = device.launch_overhead_s;
      return fpga::model_kernel_only(input);
    };
    const auto alveo = result(devices.alveo);
    const auto stratix = result(devices.stratix);

    const kernel::ChunkPlan plan(dims, chunk);
    const double overlap =
        static_cast<double>(plan.overlap_values_per_field()) /
        static_cast<double>(plan.streamed_values_per_field());
    // 3 fields x (3 slices of the padded face + 3x3 column windows).
    const double buffer_kb =
        3.0 * (3.0 * static_cast<double>(plan.max_padded_face()) +
               9.0 * static_cast<double>(dims.nz + 2)) *
        sizeof(double) / 1024.0;

    t.row({std::to_string(chunk), util::format_double(alveo.gflops, 2),
           util::format_double(stratix.gflops, 2),
           util::format_double(overlap * 100.0, 1) + "%",
           util::format_double(buffer_kb, 0)});
  }
  return bench::emit(t, cli);
}
