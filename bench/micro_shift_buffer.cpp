// Measured-on-host throughput of the stencil providers: the paper's 3D
// shift buffer versus the previous-generation delay line, and the full
// fused kernel datapath.
//
// This bench owns its main: before handing over to google-benchmark it runs
// a short instrumented sweep of the shift buffer and fused kernel through a
// pw::obs::MetricsRegistry and dumps the result as BENCH_micro_shift_buffer
// .json (override with --json=<path>), so reproduce.sh gets a
// machine-readable artefact even when the full benchmark run is skipped.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/advect/reference.hpp"
#include "pw/baseline/delay_line.hpp"
#include "pw/grid/init.hpp"
#include "pw/kernel/fused.hpp"
#include "pw/kernel/shift_buffer.hpp"
#include "pw/kernel/vectorized.hpp"
#include "pw/util/rng.hpp"
#include "pw/util/timer.hpp"

namespace {

void BM_ShiftBuffer3D(benchmark::State& state) {
  const auto face = static_cast<std::size_t>(state.range(0));
  pw::kernel::ShiftBuffer3D buffer(face, 66);
  pw::util::Rng rng(1);
  std::vector<double> inputs(face * 66 * 4);
  for (auto& v : inputs) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::size_t n = 0;
  for (auto _ : state) {
    auto out = buffer.push(inputs[n]);
    benchmark::DoNotOptimize(out);
    n = (n + 1) % inputs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShiftBuffer3D)->Arg(10)->Arg(18)->Arg(34)->Arg(66);

void BM_DelayLineStencil(benchmark::State& state) {
  const auto face = static_cast<std::size_t>(state.range(0));
  pw::baseline::DelayLineStencil buffer(face, 66);
  pw::util::Rng rng(2);
  std::vector<double> inputs(face * 66 * 4);
  for (auto& v : inputs) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::size_t n = 0;
  for (auto _ : state) {
    auto out = buffer.push(inputs[n]);
    benchmark::DoNotOptimize(out);
    n = (n + 1) % inputs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DelayLineStencil)->Arg(10)->Arg(18)->Arg(34)->Arg(66);

void BM_FusedKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pw::grid::GridDims dims{n, n, 64};
  pw::grid::WindState wind(dims);
  pw::grid::init_random(wind, 3);
  const auto coefficients = pw::advect::PwCoefficients::from_geometry(
      pw::grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
  pw::advect::SourceTerms out(dims);
  for (auto _ : state) {
    pw::kernel::run_kernel_fused(wind, coefficients, out,
                                 pw::kernel::KernelConfig{64});
    benchmark::DoNotOptimize(out.su.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * dims.cells());
}
BENCHMARK(BM_FusedKernel)->Arg(16)->Arg(32)->Arg(64);


void BM_VectorizedKernelF32(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const pw::grid::GridDims dims{32, 32, 64};
  pw::grid::WindState wind(dims);
  pw::grid::init_random(wind, 4);
  const auto coefficients = pw::advect::PwCoefficients::from_geometry(
      pw::grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
  pw::advect::SourceTerms out(dims);
  for (auto _ : state) {
    pw::kernel::run_kernel_vectorized_f32(wind, coefficients, out,
                                          pw::kernel::KernelConfig{64},
                                          lanes);
    benchmark::DoNotOptimize(out.su.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * dims.cells());
}
BENCHMARK(BM_VectorizedKernelF32)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

/// One quick instrumented pass per shift-buffer face size plus one fused
/// kernel run, feeding the registry that becomes the JSON artefact. Kept
/// deliberately small (a few ms per face) so the artefact is produced even
/// on smoke runs.
void record_instrumented_sweep(pw::obs::MetricsRegistry& registry) {
  using namespace pw;
  for (const std::size_t face : {std::size_t{10}, std::size_t{18},
                                 std::size_t{34}, std::size_t{66}}) {
    kernel::ShiftBuffer3D buffer(face, 66);
    util::Rng rng(1);
    std::vector<double> inputs(face * 66 * 4);
    for (auto& v : inputs) {
      v = rng.uniform(-1.0, 1.0);
    }
    const std::size_t pushes = 1u << 20;
    std::size_t n = 0;
    util::WallTimer timer;
    for (std::size_t i = 0; i < pushes; ++i) {
      auto out = buffer.push(inputs[n]);
      benchmark::DoNotOptimize(out);
      n = (n + 1) % inputs.size();
    }
    const double seconds = timer.seconds();
    const std::string prefix =
        "micro.shift_buffer.face_" + std::to_string(face);
    registry.counter_add(prefix + ".pushes", pushes);
    registry.gauge_set(prefix + ".pushes_per_s",
                       static_cast<double>(pushes) / seconds);
    registry.observe("micro.shift_buffer.pass_seconds", seconds);
  }

  // The fused kernel reports its own kernel.* counters and stencils/sec
  // histogram once the registry is attached to its config.
  const grid::GridDims dims{32, 32, 64};
  grid::WindState wind(dims);
  grid::init_random(wind, 3);
  const auto coefficients = advect::PwCoefficients::from_geometry(
      grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
  advect::SourceTerms out(dims);
  kernel::KernelConfig config{64};
  config.metrics = &registry;
  kernel::run_kernel_fused(wind, coefficients, out, config);
}

}  // namespace

int main(int argc, char** argv) {
  const pw::util::Cli cli(argc, argv);

  pw::obs::MetricsRegistry registry;
  record_instrumented_sweep(registry);
  const int json_status =
      pw::bench::emit_registry(registry, "BENCH_micro_shift_buffer.json", cli);
  if (json_status != 0) {
    return json_status;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
