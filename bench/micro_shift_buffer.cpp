// Measured-on-host throughput of the stencil providers: the paper's 3D
// shift buffer versus the previous-generation delay line, and the full
// fused kernel datapath.
#include <benchmark/benchmark.h>

#include <memory>

#include "pw/advect/coefficients.hpp"
#include "pw/advect/reference.hpp"
#include "pw/baseline/delay_line.hpp"
#include "pw/grid/init.hpp"
#include "pw/kernel/fused.hpp"
#include "pw/kernel/shift_buffer.hpp"
#include "pw/kernel/vectorized.hpp"
#include "pw/util/rng.hpp"

namespace {

void BM_ShiftBuffer3D(benchmark::State& state) {
  const auto face = static_cast<std::size_t>(state.range(0));
  pw::kernel::ShiftBuffer3D buffer(face, 66);
  pw::util::Rng rng(1);
  std::vector<double> inputs(face * 66 * 4);
  for (auto& v : inputs) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::size_t n = 0;
  for (auto _ : state) {
    auto out = buffer.push(inputs[n]);
    benchmark::DoNotOptimize(out);
    n = (n + 1) % inputs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShiftBuffer3D)->Arg(10)->Arg(18)->Arg(34)->Arg(66);

void BM_DelayLineStencil(benchmark::State& state) {
  const auto face = static_cast<std::size_t>(state.range(0));
  pw::baseline::DelayLineStencil buffer(face, 66);
  pw::util::Rng rng(2);
  std::vector<double> inputs(face * 66 * 4);
  for (auto& v : inputs) {
    v = rng.uniform(-1.0, 1.0);
  }
  std::size_t n = 0;
  for (auto _ : state) {
    auto out = buffer.push(inputs[n]);
    benchmark::DoNotOptimize(out);
    n = (n + 1) % inputs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DelayLineStencil)->Arg(10)->Arg(18)->Arg(34)->Arg(66);

void BM_FusedKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const pw::grid::GridDims dims{n, n, 64};
  pw::grid::WindState wind(dims);
  pw::grid::init_random(wind, 3);
  const auto coefficients = pw::advect::PwCoefficients::from_geometry(
      pw::grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
  pw::advect::SourceTerms out(dims);
  for (auto _ : state) {
    pw::kernel::run_kernel_fused(wind, coefficients, out,
                                 pw::kernel::KernelConfig{64});
    benchmark::DoNotOptimize(out.su.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * dims.cells());
}
BENCHMARK(BM_FusedKernel)->Arg(16)->Arg(32)->Arg(64);


void BM_VectorizedKernelF32(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const pw::grid::GridDims dims{32, 32, 64};
  pw::grid::WindState wind(dims);
  pw::grid::init_random(wind, 4);
  const auto coefficients = pw::advect::PwCoefficients::from_geometry(
      pw::grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
  pw::advect::SourceTerms out(dims);
  for (auto _ : state) {
    pw::kernel::run_kernel_vectorized_f32(wind, coefficients, out,
                                          pw::kernel::KernelConfig{64},
                                          lanes);
    benchmark::DoNotOptimize(out.su.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * dims.cells());
}
BENCHMARK(BM_VectorizedKernelF32)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
