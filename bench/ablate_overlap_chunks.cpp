// Ablation of the host-side X-chunk count for transfer/compute overlap
// (paper §IV: "given a sensible chunk size then data will be present when
// a specific kernel starts"). Too few chunks leave the first/last
// transfers exposed; too many pay per-command DMA/dispatch overhead.
#include "bench_common.hpp"
#include "pw/advect/flops.hpp"
#include "pw/exp/devices.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 16));
  const grid::GridDims dims = grid::paper_grid(cells);

  util::Table t("Ablation: X-chunk count for overlapped transfers (" +
                util::format_cells(dims.cells()) + " cells)");
  t.header({"Chunks", "Alveo U280 (GFLOPS)", "Alveo kernel busy",
            "Stratix 10 (GFLOPS)", "V100 (GFLOPS)"});

  for (std::size_t chunks : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 512u}) {
    const auto alveo = exp::run_fpga_overall(devices.alveo,
                                             devices.alveo_power, dims,
                                             /*overlapped=*/true, chunks);
    const auto stratix = exp::run_fpga_overall(devices.stratix,
                                               devices.stratix_power, dims,
                                               true, chunks);
    const auto gpu = exp::run_gpu_overall(devices.v100, devices.v100_power,
                                          dims, true, chunks);
    t.row({std::to_string(chunks), util::format_double(alveo.gflops, 2),
           util::format_double(alveo.compute_utilisation * 100.0, 0) + "%",
           util::format_double(stratix.gflops, 2),
           util::format_double(gpu.gflops, 2)});
  }
  return bench::emit(t, cli);
}
