// Table-I-style peak-fraction bench for every kernel declared in the
// pw::stencil registry. For each registered StencilSpec the run:
//
//   * models a single U280 kernel instance at the paper's 16M grid through
//     the spec-derived fpga::perf_model entry (stencil::perf_input), and
//   * measures the fused shift-buffer engine on this host (scaled-down
//     grid), holding the result bit-identical to the kernel's scalar
//     reference.
//
// Alongside the ASCII table it dumps a registry-backed JSON artefact
// (default BENCH_stencils.json, override with --json=). The gauge
// stencils.bench.bit_exact is 1.0 only when every kernel's fused run
// bit-matched its reference — scripts/check_bench_json.py gates on it.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/advect/reference.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/grid/compare.hpp"
#include "pw/grid/init.hpp"
#include "pw/stencil/advect.hpp"
#include "pw/stencil/diffusion.hpp"
#include "pw/stencil/poisson.hpp"
#include "pw/stencil/spec.hpp"
#include "pw/util/table.hpp"
#include "pw/util/timer.hpp"

namespace {

struct MeasuredRun {
  double seconds = 0.0;
  double gflops = 0.0;
  bool bit_exact = false;
};

bool terms_bit_equal(const pw::advect::SourceTerms& a,
                     const pw::advect::SourceTerms& b) {
  return pw::grid::compare_interior(a.su, b.su).bit_equal() &&
         pw::grid::compare_interior(a.sv, b.sv).bit_equal() &&
         pw::grid::compare_interior(a.sw, b.sw).bit_equal();
}

/// Times one fused-engine solve of `run` and bit-compares it against the
/// scalar reference produced by `reference`.
template <typename Reference, typename Run>
MeasuredRun measure(const pw::grid::GridDims& dims, std::uint64_t flops,
                    Reference&& reference, Run&& run) {
  pw::advect::SourceTerms expected(dims);
  reference(expected);

  pw::stencil::EngineConfig config;
  config.engine = pw::stencil::Engine::kFused;
  pw::advect::SourceTerms got(dims);
  pw::util::WallTimer timer;
  run(got, config);

  MeasuredRun measured;
  measured.seconds = timer.seconds();
  measured.gflops =
      measured.seconds > 0.0
          ? static_cast<double>(flops) / measured.seconds / 1e9
          : 0.0;
  measured.bit_exact = terms_bit_equal(expected, got);
  return measured;
}

std::string pct(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);

  // Modelled at the paper's Table I grid; measured on a host-friendly one.
  const grid::GridDims model_dims = grid::paper_grid(16);
  const grid::GridDims dims{
      static_cast<std::size_t>(cli.get_int("nx", 32)),
      static_cast<std::size_t>(cli.get_int("ny", 64)),
      static_cast<std::size_t>(cli.get_int("nz", 32))};

  auto state = std::make_unique<grid::WindState>(dims);
  grid::init_random(*state, 2026);
  const auto coefficients = advect::PwCoefficients::from_geometry(
      grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));

  stencil::DiffusionParams diffusion;
  diffusion.kappa = 12.5;
  stencil::PoissonParams poisson;
  poisson.iterations =
      static_cast<std::size_t>(cli.get_int("poisson_iters", 8));

  obs::MetricsRegistry registry;
  util::Table table("Stencil-machine kernels: modelled single U280 kernel at " +
                    util::format_cells(model_dims.cells()) +
                    " cells, fused engine measured at " +
                    util::format_cells(dims.cells()) + " cells");
  table.header({"kernel", "flops/cell", "sweeps", "model GF/s", "% of peak",
                "host GF/s", "bit-exact"});

  bool all_bit_exact = true;
  for (const stencil::StencilSpec& spec : stencil::registered_stencils()) {
    // The spec-derived analytic model row, published through the registry
    // (gauges stencils.<name>.model.gflops / .pct_of_theoretical_peak / ...).
    std::size_t sweeps = spec.sweeps;
    fpga::KernelOnlyInput input = stencil::perf_input(spec, model_dims);
    if (spec.name == "poisson_jacobi") {
      input.sweeps = poisson.iterations;
      sweeps = poisson.iterations;
    }
    const fpga::KernelOnlyResult model = fpga::model_kernel_only(input);
    const std::string prefix = "stencils." + spec.name;
    fpga::record_kernel_only(input, model, registry, prefix + ".model");

    // The measured host row for the same kernel.
    const std::uint64_t flops = stencil::total_flops(spec, dims, sweeps);
    MeasuredRun measured;
    if (spec.name == "advect_pw") {
      measured = measure(
          dims, flops,
          [&](advect::SourceTerms& out) {
            advect::advect_reference(*state, coefficients, out);
          },
          [&](advect::SourceTerms& out, const stencil::EngineConfig& config) {
            stencil::run_advect(*state, coefficients, out, config);
          });
    } else if (spec.name == "diffusion") {
      measured = measure(
          dims, flops,
          [&](advect::SourceTerms& out) {
            stencil::diffusion_reference(*state, diffusion, out);
          },
          [&](advect::SourceTerms& out, const stencil::EngineConfig& config) {
            stencil::run_diffusion(*state, diffusion, out, config);
          });
    } else if (spec.name == "poisson_jacobi") {
      measured = measure(
          dims, flops,
          [&](advect::SourceTerms& out) {
            stencil::poisson_reference(*state, poisson, out);
          },
          [&](advect::SourceTerms& out, const stencil::EngineConfig& config) {
            stencil::run_poisson(*state, poisson, out, config);
          });
    } else {
      std::fprintf(stderr, "no host driver for registry kernel '%s'\n",
                   spec.name.c_str());
      return 1;
    }
    all_bit_exact = all_bit_exact && measured.bit_exact;

    registry.gauge_set(prefix + ".measured.gflops", measured.gflops);
    registry.gauge_set(prefix + ".measured.seconds", measured.seconds);
    registry.gauge_set(prefix + ".measured.bit_exact",
                       measured.bit_exact ? 1.0 : 0.0);

    table.row({spec.name, util::format_double(spec.flops_per_cell, 0),
               std::to_string(sweeps), util::format_double(model.gflops, 2),
               pct(model.efficiency * 100.0),
               util::format_double(measured.gflops, 2),
               measured.bit_exact ? "yes" : "NO"});
  }

  registry.gauge_set("stencils.bench.bit_exact", all_bit_exact ? 1.0 : 0.0);
  registry.gauge_set("stencils.bench.kernels",
                     static_cast<double>(stencil::registered_stencils().size()));

  const int status = bench::emit(table, cli);
  const int json_status =
      bench::emit_registry(registry, "BENCH_stencils.json", cli);
  if (!all_bit_exact) {
    std::fprintf(stderr,
                 "stencil_kernels: a kernel diverged from its reference\n");
    return 1;
  }
  return status != 0 ? status : json_status;
}
