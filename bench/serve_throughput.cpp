// Serving-layer throughput: the same synthetic request trace replayed two
// ways on this host —
//
//   sequential  one blocking AdvectionSolver::solve per request, in order
//               (a fresh solver per request, as a naive caller would do)
//   service     pw::serve::SolveService with admission, same-plan batching,
//               per-backend worker pools and the content-addressed result
//               cache
//
// and the aggregate speedup between them. Be clear about where the speedup
// comes from: the trace repeats hot payloads (--repeat fraction, default
// 0.7 — the "popular tile" pattern), so the service answers repeated
// requests from its result cache and amortises per-solve setup (thread
// pools, admission lint) across the stream, while the sequential baseline
// recomputes every request from scratch. On a many-core host concurrent
// workers add further overlap; on a single-core host the cache and
// amortisation carry the win. The printed table splits computed requests
// from cache hits so the contribution is visible, and the registry artefact
// (default BENCH_serve.json, --json=<path>) records both runs plus the
// service's own latency/batch histograms for check_bench_json.py.
//
// Flags: --requests=N --workers=N --batch=N --repeat=F --seed=N
//        --csv=PATH --json=PATH
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pw/advect/flops.hpp"
#include "pw/api/request.hpp"
#include "pw/serve/service.hpp"
#include "pw/serve/trace.hpp"
#include "pw/util/cli.hpp"
#include "pw/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);

  serve::TraceSpec spec;
  spec.requests = static_cast<std::size_t>(cli.get_int("requests", 96));
  spec.repeat_fraction = cli.get_double("repeat", 0.8);
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // Grids large enough that a solve costs milliseconds (so the measured
  // ratio reflects serving, not dispatch overhead on toy grids), and a
  // small hot set so the repeat traffic actually collides in the cache.
  spec.shapes = {{48, 48, 32}, {64, 48, 32}};
  spec.hot_payloads = 2;
  const auto trace = serve::make_trace(spec);

  obs::MetricsRegistry registry;

  // Sequential baseline: one blocking solve per request, no reuse of
  // anything between requests.
  util::WallTimer sequential_timer;
  std::uint64_t sequential_flops = 0;
  for (const api::SolveRequest& request : trace) {
    const api::SolveResult result =
        api::AdvectionSolver(request.options).solve(request);
    if (!result.ok()) {
      std::cerr << "sequential solve failed (" << request.tag
                << "): " << result.message << "\n";
      return 1;
    }
    sequential_flops +=
        advect::total_flops(request.state->u.dims());
  }
  const double sequential_s = sequential_timer.seconds();

  // The same trace through the service.
  serve::ServiceConfig config;
  config.workers_per_backend =
      static_cast<std::size_t>(cli.get_int("workers", 8));
  config.max_batch = static_cast<std::size_t>(cli.get_int("batch", 8));
  config.queue_capacity = spec.requests;
  config.metrics = &registry;
  serve::SolveService service(config);

  util::WallTimer service_timer;
  auto futures = service.submit_all(trace);
  service.drain();
  const double service_s = service_timer.seconds();
  for (auto& future : futures) {
    if (!future.wait().ok()) {
      std::cerr << "served solve failed: " << future.wait().message << "\n";
      return 1;
    }
  }
  const serve::ServiceReport report = service.report();

  const double speedup = sequential_s / service_s;
  const double sequential_gflops =
      static_cast<double>(sequential_flops) / sequential_s / 1e9;
  const double service_gflops =
      static_cast<double>(sequential_flops) / service_s / 1e9;

  util::Table table("Serving throughput: " + std::to_string(spec.requests) +
                    "-request trace, repeat fraction " +
                    util::format_double(spec.repeat_fraction, 2));
  table.header({"mode", "seconds", "req/s", "GFLOPS (served)", "computed",
                "cache hits", "speedup"});
  table.row({"sequential solve()", util::format_double(sequential_s, 3),
             util::format_double(spec.requests / sequential_s, 1),
             util::format_double(sequential_gflops, 2),
             std::to_string(spec.requests), "0", "1.00x"});
  table.row({"SolveService", util::format_double(service_s, 3),
             util::format_double(spec.requests / service_s, 1),
             util::format_double(service_gflops, 2),
             std::to_string(report.computed),
             std::to_string(report.result_cache_hits),
             util::format_double(speedup, 2) + "x"});
  const int status = bench::emit(table, cli);
  std::cout << "p50/p95/p99 served latency: "
            << util::format_double(report.latency_s.p50 * 1e3, 2) << " / "
            << util::format_double(report.latency_s.p95 * 1e3, 2) << " / "
            << util::format_double(report.latency_s.p99 * 1e3, 2)
            << " ms; mean batch "
            << util::format_double(report.batch_size.mean, 2) << "\n";

  // Both runs land in the registry artefact next to the service's own
  // serve.* metrics (latency/batch histograms, admission counters).
  registry.gauge_set("serve.bench.requests",
                     static_cast<double>(spec.requests));
  registry.gauge_set("serve.bench.repeat_fraction", spec.repeat_fraction);
  registry.gauge_set("serve.bench.sequential_s", sequential_s);
  registry.gauge_set("serve.bench.service_s", service_s);
  registry.gauge_set("serve.bench.sequential_gflops", sequential_gflops);
  registry.gauge_set("serve.bench.service_gflops", service_gflops);
  registry.gauge_set("serve.bench.speedup", speedup);
  registry.gauge_set("serve.bench.computed",
                     static_cast<double>(report.computed));
  registry.gauge_set("serve.bench.cache_hits",
                     static_cast<double>(report.result_cache_hits));
  const int json_status =
      bench::emit_registry(registry, "BENCH_serve.json", cli);
  return status != 0 ? status : json_status;
}
