// §IV's scaling narrative as a sweep: kernel-only and overlapped-overall
// performance versus the number of kernel instances on each device. Shows
// the Alveo's flat 300 MHz linear scaling, the Stratix 10's clock collapse
// (398 -> 250 MHz via the congestion model) and DDR system saturation, and
// where the bitstream fitter says the sweep must stop (6 and 5).
#include "bench_common.hpp"
#include "pw/exp/devices.hpp"
#include "pw/exp/experiments.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/fpga/resource_estimate.hpp"
#include "pw/fpga/synthesis_report.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();
  const grid::GridDims dims = grid::paper_grid(16);

  kernel::KernelConfig config;
  config.chunk_y = 64;
  fpga::KernelEstimateOptions options;
  options.nz = dims.nz;

  util::Table t(
      "Kernel scaling on 16M cells: kernel-only GFLOPS (and clock) per "
      "instance count; rows beyond the fitter's capacity marked");
  t.header({"Kernels", "Alveo GFLOPS", "Alveo clock", "Alveo fit?",
            "Stratix GFLOPS", "Stratix clock", "Stratix fit?"});

  auto evaluate = [&](const fpga::FpgaDeviceProfile& base,
                      std::size_t kernels, double& gflops, double& clock_mhz,
                      bool& fits) {
    const auto usage =
        fpga::estimate_kernel(config, options, base.vendor);
    const std::size_t fit = fpga::max_kernels(base, usage);
    fits = kernels <= fit;
    const double utilisation =
        base.resources.utilisation(usage * kernels);
    const double fmax = fpga::estimate_fmax_hz(base, utilisation);
    clock_mhz = fmax / 1e6;

    fpga::KernelOnlyInput input;
    input.dims = dims;
    input.config = config;
    input.kernels = kernels;
    input.clock_hz = fmax;
    input.memory = base.memories.front();
    input.launch_overhead_s = base.launch_overhead_s;
    gflops = fpga::model_kernel_only(input).gflops;
  };

  for (std::size_t kernels = 1; kernels <= 8; ++kernels) {
    double alveo_gflops = 0.0, alveo_clock = 0.0;
    double stratix_gflops = 0.0, stratix_clock = 0.0;
    bool alveo_fits = false, stratix_fits = false;
    evaluate(devices.alveo, kernels, alveo_gflops, alveo_clock, alveo_fits);
    evaluate(devices.stratix, kernels, stratix_gflops, stratix_clock,
             stratix_fits);
    t.row({std::to_string(kernels), util::format_double(alveo_gflops, 1),
           util::format_double(alveo_clock, 0) + " MHz",
           alveo_fits ? "yes" : "NO",
           util::format_double(stratix_gflops, 1),
           util::format_double(stratix_clock, 0) + " MHz",
           stratix_fits ? "yes" : "NO"});
  }
  return bench::emit(t, cli);
}
