// Measured-on-host throughput of the dataflow plumbing: blocking streams
// (vendor-frontend transport) and the cycle engine's simulation rate.
#include <benchmark/benchmark.h>

#include <thread>

#include "pw/dataflow/engine.hpp"
#include "pw/dataflow/sim_stream.hpp"
#include "pw/dataflow/stream.hpp"

namespace {

void BM_StreamPushPop(benchmark::State& state) {
  pw::dataflow::Stream<double> stream(
      static_cast<std::size_t>(state.range(0)));
  double x = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.push(x));
    auto v = stream.try_pop();
    benchmark::DoNotOptimize(v);
    x += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamPushPop)->Arg(4)->Arg(64);

void BM_StreamThreaded(benchmark::State& state) {
  // Producer/consumer across real threads, the frontends' execution model.
  for (auto _ : state) {
    pw::dataflow::Stream<double> stream(64);
    constexpr int kCount = 100000;
    std::thread producer([&stream] {
      for (int i = 0; i < kCount; ++i) {
        benchmark::DoNotOptimize(stream.push(static_cast<double>(i)));
      }
      stream.close();
    });
    double sum = 0.0;
    while (auto v = stream.pop()) {
      sum += *v;
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(kCount);
  }
}
BENCHMARK(BM_StreamThreaded);

void BM_SimStream(benchmark::State& state) {
  pw::dataflow::SimStream<double> stream(4);
  double x = 0.0;
  for (auto _ : state) {
    stream.push(x);
    auto v = stream.pop();
    benchmark::DoNotOptimize(v);
    x += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimStream);

}  // namespace
