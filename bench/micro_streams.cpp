// Measured-on-host handoff latency of the stream fabric: the lock-free
// SPSC ring versus the retired mutex+condvar transport, scalar versus
// batched (push_n/pop_n) moves, and wide DataPack words.
//
// Methodology: the gated numbers come from a same-thread relay — each
// element is pushed and immediately popped, so the figure is the cost of
// moving one value through the transport (enqueue + dequeue) with no
// scheduler noise. On a single-core host a cross-thread pingpong measures
// context-switch latency for *both* implementations and says nothing about
// the ring itself; the threaded throughput numbers are still reported
// below, but only the relay figures are gated by check_bench_json.py.
// Every pass is repeated and the minimum is kept (min-of-repeats rejects
// interference; means drift with background load).
//
// This bench owns its main and emits BENCH_streams.json (override with
// --json=<path>) through the shared registry exporter, so reproduce.sh and
// ci.sh get a machine-readable artefact with the streams.bench.* gauges.
#include <cstddef>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pw/dataflow/streams.hpp"
#include "pw/util/timer.hpp"

namespace {

// Sink that the optimiser must assume is read elsewhere; keeps the relay
// loops from collapsing without linking google-benchmark.
volatile double g_sink = 0.0;

constexpr std::size_t kRelayElems = 1u << 18;
constexpr int kRepeats = 7;
constexpr std::size_t kBatch = 64;

double min_pass_seconds(const std::vector<double>& passes) {
  double best = std::numeric_limits<double>::max();
  for (const double s : passes) {
    best = s < best ? s : best;
  }
  return best;
}

// The relay loops are pinned to cache-line-aligned entry points: gcc's
// default placement can land the SPSC loop on an alignment that costs
// ~2.5x (measured 9.4ns vs 3.7ns for identical code), which would turn
// the gated ratio into a code-layout lottery.
// `flatten` keeps push/pop inlined into the loop even though the same
// methods have other callers in this TU.
#define PW_BENCH_HOT __attribute__((noinline, aligned(64), flatten))

/// Per-element cost of a push+pop pair through `stream`, same thread.
template <typename StreamT>
PW_BENCH_HOT double relay_ns_per_elem(StreamT& stream) {
  std::vector<double> passes;
  passes.reserve(kRepeats);
  for (int r = 0; r < kRepeats; ++r) {
    pw::util::WallTimer timer;
    for (std::size_t i = 0; i < kRelayElems; ++i) {
      if (!stream.push(static_cast<double>(i))) {
        return -1.0;
      }
      auto v = stream.pop();
      g_sink = v ? *v : 0.0;
    }
    passes.push_back(timer.seconds());
  }
  return min_pass_seconds(passes) * 1e9 / static_cast<double>(kRelayElems);
}

/// Per-element cost of batched moves: push_n a 64-wide run, pop_n it back.
PW_BENCH_HOT double relay_batched_ns_per_elem(
    pw::dataflow::Stream<double>& stream) {
  std::vector<double> buf(kBatch);
  std::vector<double> out(kBatch);
  std::vector<double> passes;
  passes.reserve(kRepeats);
  for (int r = 0; r < kRepeats; ++r) {
    pw::util::WallTimer timer;
    for (std::size_t i = 0; i < kRelayElems; i += kBatch) {
      for (std::size_t j = 0; j < kBatch; ++j) {
        buf[j] = static_cast<double>(i + j);
      }
      if (stream.push_n(buf.data(), kBatch) != kBatch) {
        return -1.0;
      }
      if (stream.pop_n(out.data(), kBatch) != kBatch) {
        return -1.0;
      }
      g_sink = out[kBatch - 1];
    }
    passes.push_back(timer.seconds());
  }
  return min_pass_seconds(passes) * 1e9 / static_cast<double>(kRelayElems);
}

/// Per-*lane* cost of relaying one cache-line-wide DataPack per handoff.
PW_BENCH_HOT double relay_pack_ns_per_lane(
    pw::dataflow::Stream<pw::dataflow::FieldPack>& stream) {
  constexpr std::size_t kPacks = kRelayElems / pw::dataflow::FieldPack::kWidth;
  pw::dataflow::FieldPack pack{};
  std::vector<double> passes;
  passes.reserve(kRepeats);
  for (int r = 0; r < kRepeats; ++r) {
    pw::util::WallTimer timer;
    for (std::size_t i = 0; i < kPacks; ++i) {
      pack.lane[0] = static_cast<double>(i);
      if (!stream.push(pack)) {
        return -1.0;
      }
      auto v = stream.pop();
      g_sink = v ? v->lane[0] : 0.0;
    }
    passes.push_back(timer.seconds());
  }
  return min_pass_seconds(passes) * 1e9 /
         static_cast<double>(kPacks * pw::dataflow::FieldPack::kWidth);
}

/// Cross-thread producer/consumer throughput, reported but not gated (on a
/// one-core host this measures the scheduler, not the ring).
double threaded_elems_per_second(pw::dataflow::StreamPolicy policy) {
  constexpr std::size_t kCount = 200000;
  pw::dataflow::Stream<double> stream(
      {.capacity = 256, .policy = policy, .name = "bench.threaded"});
  pw::util::WallTimer timer;
  std::thread producer([&stream] {
    for (std::size_t i = 0; i < kCount; ++i) {
      if (!stream.push(static_cast<double>(i))) {
        return;
      }
    }
    stream.close();
  });
  double sum = 0.0;
  while (auto v = stream.pop()) {
    sum += *v;
  }
  producer.join();
  const double seconds = timer.seconds();
  g_sink = sum;
  return static_cast<double>(kCount) / seconds;
}

void record_bench(pw::obs::MetricsRegistry& registry) {
  using pw::dataflow::MutexStream;
  using pw::dataflow::Stream;
  using pw::dataflow::StreamOptions;
  using pw::dataflow::StreamPolicy;

  MutexStream<double> mutex_stream(StreamOptions{.capacity = 256});
  const double mutex_ns = relay_ns_per_elem(mutex_stream);

  Stream<double> spsc(StreamOptions{.capacity = 256});
  const double spsc_ns = relay_ns_per_elem(spsc);

  Stream<double> mpmc(
      StreamOptions{.capacity = 256, .policy = StreamPolicy::kMpmc});
  const double mpmc_ns = relay_ns_per_elem(mpmc);

  Stream<double> batched(StreamOptions{.capacity = 256});
  const double batched_ns = relay_batched_ns_per_elem(batched);

  Stream<pw::dataflow::FieldPack> packs(StreamOptions{.capacity = 64});
  const double pack_ns = relay_pack_ns_per_lane(packs);

  registry.gauge_set("streams.bench.handoff_ns", spsc_ns);
  registry.gauge_set("streams.bench.mutex_handoff_ns", mutex_ns);
  registry.gauge_set("streams.bench.mpmc_handoff_ns", mpmc_ns);
  registry.gauge_set("streams.bench.batched_ns", batched_ns);
  registry.gauge_set("streams.bench.pack_lane_ns", pack_ns);
  registry.gauge_set("streams.bench.mutex_over_spsc_handoff",
                     spsc_ns > 0.0 ? mutex_ns / spsc_ns : 0.0);
  registry.counter_add("streams.bench.relay_elems",
                       static_cast<std::uint64_t>(kRelayElems) * kRepeats * 4);

  registry.gauge_set("streams.bench.threaded_spsc_elems_per_s",
                     threaded_elems_per_second(StreamPolicy::kSpsc));
  registry.gauge_set("streams.bench.threaded_mpmc_elems_per_s",
                     threaded_elems_per_second(StreamPolicy::kMpmc));
}

}  // namespace

int main(int argc, char** argv) {
  const pw::util::Cli cli(argc, argv);

  pw::obs::MetricsRegistry registry;
  record_bench(registry);
  return pw::bench::emit_registry(registry, "BENCH_streams.json", cli);
}
