// The paper's closing prediction (§V): "the next generation FPGA
// technologies to be released later in 2021 will likely further close the
// gap between FPGAs and GPUs". Evaluates hypothetical next-generation
// boards — defined purely as config-text profiles, the same mechanism
// users have for their own hardware — through the identical model stack,
// next to the paper's boards and the V100.
#include "bench_common.hpp"
#include "pw/exp/devices.hpp"
#include "pw/exp/experiments.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/fpga/profile_io.hpp"

namespace {

// Plausible next-generation parts (publicly known directions at the time:
// bigger HBM, PCIe gen4, higher Fmax). Calibration inherits the Alveo's
// per-kernel sustained scaling with clock.
constexpr const char* kU55cPlus = R"(
name = Next-gen Xilinx (U55C-class)
vendor = xilinx
logic_cells = 1304000
bram_kb = 4600
uram_kb = 35000
dsp = 9024
clock_single_mhz = 320
clock_multi_mhz = 320
kernels = 7

[pcie]
peak_gbps = 31.5
single_util = 0.2
overlap_util = 0.75

[memory0]
name = HBM2e
kind = hbm2
per_kernel_gbps = 14
system_gbps = 380
capacity_gb = 16
burst_knee = 56
)";

constexpr const char* kAgilex = R"(
name = Next-gen Intel (Agilex-class)
vendor = intel
logic_cells = 1120000
bram_kb = 33000
dsp = 8736
clock_single_mhz = 450
clock_multi_mhz = 330
kernels = 6

[pcie]
peak_gbps = 15.75
single_util = 0.6
overlap_util = 0.85

[memory0]
name = DDR5
kind = ddr
per_kernel_gbps = 20
system_gbps = 90
capacity_gb = 64
burst_knee = 64
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();
  const grid::GridDims dims = grid::paper_grid(67);

  util::Table t(
      "Future work (paper SV): projected next-generation boards vs the "
      "paper's hardware, 67M cells, overlapped (V100 kernel-only = 367.2 "
      "GFLOPS for context)");
  t.header({"Board", "Kernels", "Clock (multi)", "Kernel-only GFLOPS",
            "Overall GFLOPS (overlapped)", "% of V100 overall"});

  const auto v100 = exp::run_gpu_overall(devices.v100, devices.v100_power,
                                         dims, /*overlapped=*/true);

  auto evaluate = [&](const fpga::FpgaDeviceProfile& board) {
    fpga::KernelOnlyInput input;
    input.dims = dims;
    input.config.chunk_y = 64;
    input.kernels = board.paper_kernel_count;
    input.clock_hz = board.clock_hz(input.kernels);
    input.memory = board.memory_for(fpga::device_footprint_bytes(dims));
    const auto kernel_only = fpga::model_kernel_only(input);
    const auto overall = exp::run_fpga_overall(board, devices.alveo_power,
                                               dims, true);
    t.row({board.name, std::to_string(board.paper_kernel_count),
           util::format_double(board.clock_multi_hz / 1e6, 0) + " MHz",
           util::format_double(kernel_only.gflops, 1),
           util::format_double(overall.gflops, 2),
           util::format_double(100.0 * overall.gflops / v100.gflops, 0) +
               "%"});
  };

  evaluate(devices.alveo);
  evaluate(devices.stratix);
  evaluate(fpga::profile_from_config(util::Config::parse_string(kU55cPlus)));
  evaluate(fpga::profile_from_config(util::Config::parse_string(kAgilex)));

  t.row({devices.v100.name + " (overlapped)", "-", "-", "367.2",
         util::format_double(v100.gflops, 2), "100%"});
  return bench::emit(t, cli);
}
