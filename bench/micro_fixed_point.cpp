// Measured-on-host cost of the fixed-point arithmetic (paper §V future
// work) compared to native floating point, plus the reduced-precision
// datapath throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "pw/advect/coefficients.hpp"
#include "pw/grid/init.hpp"
#include "pw/hls/fixed_point.hpp"
#include "pw/precision/reduced.hpp"
#include "pw/util/rng.hpp"

namespace {

template <typename T>
T convert(double v) {
  if constexpr (std::is_same_v<T, double> || std::is_same_v<T, float>) {
    return static_cast<T>(v);
  } else {
    return T::from_double(v);
  }
}

template <typename T>
void BM_MulAddChain(benchmark::State& state) {
  pw::util::Rng rng(9);
  std::vector<T> values(1024);
  for (auto& v : values) {
    v = convert<T>(rng.uniform(-3.0, 3.0));
  }
  for (auto _ : state) {
    T acc = convert<T>(0.0);
    for (std::size_t n = 0; n + 1 < values.size(); ++n) {
      acc += values[n] * values[n + 1];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_MulAddChain<double>);
BENCHMARK(BM_MulAddChain<float>);
BENCHMARK(BM_MulAddChain<pw::hls::FixedQ43>);
BENCHMARK(BM_MulAddChain<pw::hls::FixedQ32>);

void BM_ReducedPrecisionKernel(benchmark::State& state) {
  const auto representation =
      static_cast<pw::precision::Representation>(state.range(0));
  const pw::grid::GridDims dims{16, 16, 32};
  pw::grid::WindState wind(dims);
  pw::grid::init_random(wind, 21);
  const auto coefficients = pw::advect::PwCoefficients::from_geometry(
      pw::grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
  for (auto _ : state) {
    const auto stats =
        pw::precision::evaluate(representation, wind, coefficients);
    benchmark::DoNotOptimize(stats.max_abs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dims.cells()));
}
BENCHMARK(BM_ReducedPrecisionKernel)
    ->Arg(static_cast<int>(pw::precision::Representation::kFloat32))
    ->Arg(static_cast<int>(pw::precision::Representation::kFixedQ43));

}  // namespace
