// Cost of the static verifier itself: graph construction plus the full
// pw::lint battery for the shipped configurations. The checks run before
// every enforced pipeline launch, so they must be (and are) microseconds —
// this bench keeps that property measured.
#include <benchmark/benchmark.h>

#include "pw/kernel/pipeline_graph.hpp"
#include "pw/lint/checks.hpp"

namespace {

void BM_LintFig2(benchmark::State& state) {
  pw::kernel::PipelineGraphSpec spec;
  spec.dims = {64, 64, 64};
  spec.chunk_y = 16;
  spec.kernels = static_cast<std::size_t>(state.range(0));
  spec.with_cycle_advance = true;
  for (auto _ : state) {
    const auto graph = pw::kernel::describe_kernel_pipeline(spec);
    const auto report = pw::lint::run_checks(graph);
    benchmark::DoNotOptimize(report.diagnostics.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LintFig2)->Arg(1)->Arg(4)->Arg(8);

void BM_LintChecksOnly(benchmark::State& state) {
  pw::kernel::PipelineGraphSpec spec;
  spec.dims = {64, 64, 64};
  spec.chunk_y = 16;
  spec.kernels = 6;  // the paper's Alveo configuration
  const auto graph = pw::kernel::describe_kernel_pipeline(spec);
  for (auto _ : state) {
    const auto report = pw::lint::run_checks(graph);
    benchmark::DoNotOptimize(report.diagnostics.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LintChecksOnly);

}  // namespace
