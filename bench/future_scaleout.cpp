// Extension beyond the paper (clearly marked as such): MONC runs MPI-
// decomposed, so a production deployment puts one accelerator per rank.
// Unlike the first version of this bench — which *projected* scaling from
// the calibrated device model and charged every kernel a hardcoded 3-field
// halo exchange — this one *measures* it: the grid is partitioned over N
// simulated device shards (pw::shard), every shard runs the stencil pass on
// its own engine instance, halos travel through the decomposition's
// HaloPlan, and per-shard compute is timed with the thread CPU clock so the
// efficiency numbers survive hosts with fewer cores than shards. Exchanged
// traffic is derived from each kernel's StencilSpec (the old hardcoded 3 is
// exactly the bug this rewrite removes); wire time comes from the
// interconnect cost model over per-device DMA schedulers.
//
// Emits BENCH_scaleout.json with the scaleout.bench.* gauges gated by
// scripts/check_bench_json.py: bit_exact must be 1.0 and the 4-shard
// weak-scaling efficiency must clear its floor.
#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "pw/advect/coefficients.hpp"
#include "pw/api/request.hpp"
#include "pw/api/solver.hpp"
#include "pw/decomp/decomposition.hpp"
#include "pw/grid/compare.hpp"
#include "pw/grid/init.hpp"
#include "pw/shard/sharded_solver.hpp"
#include "pw/shard/topology.hpp"
#include "pw/stencil/spec.hpp"

namespace {

using namespace pw;

api::SolveRequest make_request(grid::GridDims dims, api::Kernel kernel,
                               std::size_t poisson_iters) {
  api::SolverOptions options;
  options.backend = api::Backend::kFused;
  switch (kernel) {
    case api::Kernel::kAdvectPw:
      options.kernel_spec = api::AdvectPwOptions{};
      break;
    case api::Kernel::kDiffusion:
      options.kernel_spec = api::DiffusionOptions{};
      break;
    case api::Kernel::kPoissonJacobi: {
      api::PoissonOptions poisson;
      poisson.iterations = poisson_iters;
      options.kernel_spec = poisson;
      break;
    }
  }
  auto state = std::make_shared<grid::WindState>(dims);
  grid::init_random(*state, 2026);
  api::SolveRequest request;
  request.state = std::move(state);
  request.coefficients = std::make_shared<advect::PwCoefficients>(
      advect::PwCoefficients::from_geometry(
          grid::Geometry::uniform(dims, 100.0, 100.0, 50.0)));
  request.options = options;
  return request;
}

bool bit_exact_vs_single_device(const api::SolveRequest& request,
                                std::size_t shards,
                                const shard::ShardOptions& base) {
  const api::SolveResult single = api::Solver().solve(request);
  shard::ShardOptions options = base;
  options.devices = shards;
  shard::ShardedSolver solver(options);
  const api::SolveResult sharded = solver.solve(request);
  return single.ok() && sharded.ok() && single.terms && sharded.terms &&
         grid::compare_interior(single.terms->su, sharded.terms->su)
             .bit_equal() &&
         grid::compare_interior(single.terms->sv, sharded.terms->sv)
             .bit_equal() &&
         grid::compare_interior(single.terms->sw, sharded.terms->sw)
             .bit_equal();
}

/// Best-of-`reps` measured sharded step: the minimum simulated cluster step
/// time (slowest shard's thread CPU time + modelled exchange wire time).
struct Measured {
  double critical_path_s = 0.0;
  double max_shard_cpu_s = 0.0;
  double exchange_model_s = 0.0;
  std::uint64_t halo_bytes = 0;
  std::size_t devices_used = 0;
  std::size_t px = 0;
  std::size_t py = 0;
};

Measured measure(const api::SolveRequest& request, std::size_t shards,
                 const shard::ShardOptions& base, std::size_t reps) {
  Measured best;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    shard::ShardOptions options = base;
    options.devices = shards;
    shard::ShardedSolver solver(options);
    const api::SolveResult result = solver.solve(request);
    if (!result.ok()) {
      std::cerr << "sharded solve failed at " << shards
                << " shards: " << result.message << "\n";
      std::exit(1);
    }
    const shard::ShardRunReport& report = solver.last_report();
    if (rep == 0 || report.critical_path_s < best.critical_path_s) {
      best.critical_path_s = report.critical_path_s;
      best.max_shard_cpu_s = report.max_shard_cpu_s;
      best.exchange_model_s = report.exchange_model_s;
      best.halo_bytes = report.halo_bytes;
      best.devices_used = report.devices_used;
      best.px = report.px;
      best.py = report.py;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  // Per-shard base tile for weak scaling; the global grid grows with the
  // process grid so every shard always owns base_nx x base_ny x nz cells.
  const auto base_nx = static_cast<std::size_t>(cli.get_int("base_nx", 24));
  const auto base_ny = static_cast<std::size_t>(cli.get_int("base_ny", 24));
  const auto nz = static_cast<std::size_t>(cli.get_int("nz", 12));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 5));
  const auto poisson_iters =
      static_cast<std::size_t>(cli.get_int("poisson_iters", 4));

  shard::ShardOptions base;
  if (const auto name = cli.get("interconnect")) {
    const auto parsed = shard::parse_interconnect(*name);
    if (!parsed) {
      std::cerr << "unknown interconnect '" << *name
                << "' (expected pcie or d2d)\n";
      return 1;
    }
    base.interconnect.kind = *parsed;
  }

  obs::MetricsRegistry registry;

  // -------------------------------------------------------------------
  // Differential gate: at 4 shards, every registered kernel must match the
  // single-device facade bit-for-bit. The scaling rows below are only worth
  // publishing if the sharded execution is exact.
  double bit_exact = 1.0;
  {
    const grid::GridDims dims{2 * base_nx, 2 * base_ny, nz};
    for (const api::Kernel kernel : api::kAllKernels) {
      if (!bit_exact_vs_single_device(
              make_request(dims, kernel, poisson_iters), 4, base)) {
        bit_exact = 0.0;
      }
    }
  }
  registry.gauge_set("scaleout.bench.bit_exact", bit_exact);

  // -------------------------------------------------------------------
  // Weak scaling: constant per-shard tile. The pinned near-square process
  // grids keep every shard's extent identical, so ideal weak scaling holds
  // the step time flat as shards grow.
  struct WeakPoint {
    std::size_t shards, px, py;
  };
  const WeakPoint weak_points[] = {{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}};

  util::Table weak(
      "Extension (not in the paper): MEASURED weak scaling of the sharded "
      "advection step, " +
      std::to_string(base_nx) + "x" + std::to_string(base_ny) + "x" +
      std::to_string(nz) + " cells per shard, best of " +
      std::to_string(reps) + ", interconnect " +
      std::string(shard::to_string(base.interconnect.kind)));
  weak.header({"Shards", "Process grid", "Global cells", "Shard CPU",
               "Halo traffic / step", "Exchange (model)", "Step (critical)",
               "Weak efficiency"});

  double weak_t1 = 0.0;
  for (const WeakPoint& point : weak_points) {
    const grid::GridDims dims{base_nx * point.px, base_ny * point.py, nz};
    const api::SolveRequest request =
        make_request(dims, api::Kernel::kAdvectPw, poisson_iters);
    const Measured m = measure(request, point.shards, base, reps);
    if (point.shards == 1) {
      weak_t1 = m.critical_path_s;
    }
    const double efficiency =
        m.critical_path_s > 0.0 ? weak_t1 / m.critical_path_s : 0.0;
    registry.gauge_set(
        "scaleout.bench.weak_efficiency_" + std::to_string(point.shards),
        efficiency);
    registry.gauge_set(
        "scaleout.bench.weak_step_ms_" + std::to_string(point.shards),
        m.critical_path_s * 1e3);
    registry.gauge_set(
        "scaleout.bench.weak_halo_bytes_" + std::to_string(point.shards),
        static_cast<double>(m.halo_bytes));
    weak.row({std::to_string(point.shards),
              std::to_string(m.px) + "x" + std::to_string(m.py),
              util::format_cells(dims.cells()),
              util::format_double(m.max_shard_cpu_s * 1e3, 2) + " ms",
              util::format_bytes(static_cast<double>(m.halo_bytes)),
              util::format_double(m.exchange_model_s * 1e6, 1) + " us",
              util::format_double(m.critical_path_s * 1e3, 2) + " ms",
              util::format_double(efficiency * 100.0, 0) + "%"});
  }

  // -------------------------------------------------------------------
  // Strong scaling: fixed global grid, shards eat into the per-shard tile.
  const grid::GridDims strong_dims{base_nx * 4, base_ny * 2, nz};
  util::Table strong("MEASURED strong scaling, fixed " +
                     util::format_cells(strong_dims.cells()) +
                     " cell grid, same step");
  strong.header({"Shards", "Process grid", "Per-shard cells", "Shard CPU",
                 "Exchange (model)", "Step (critical)", "Strong efficiency"});

  double strong_t1 = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const api::SolveRequest request =
        make_request(strong_dims, api::Kernel::kAdvectPw, poisson_iters);
    const Measured m = measure(request, shards, base, reps);
    if (shards == 1) {
      strong_t1 = m.critical_path_s;
    }
    const double efficiency =
        m.critical_path_s > 0.0
            ? strong_t1 / (m.critical_path_s * static_cast<double>(shards))
            : 0.0;
    registry.gauge_set(
        "scaleout.bench.strong_efficiency_" + std::to_string(shards),
        efficiency);
    strong.row({std::to_string(shards),
                std::to_string(m.px) + "x" + std::to_string(m.py),
                util::format_cells(strong_dims.cells() / m.devices_used),
                util::format_double(m.max_shard_cpu_s * 1e3, 2) + " ms",
                util::format_double(m.exchange_model_s * 1e6, 1) + " us",
                util::format_double(m.critical_path_s * 1e3, 2) + " ms",
                util::format_double(efficiency * 100.0, 0) + "%"});
  }

  // Spec-derived halo arity per kernel, recorded so the JSON shows what
  // each kernel actually exchanges (advect/diffusion move 3 fields, the
  // Poisson guess only 1 — not a blanket 3).
  stencil::ensure_registered();
  for (const stencil::StencilSpec& spec : stencil::registered_stencils()) {
    registry.gauge_set(
        "scaleout.bench.fields_" + spec.name,
        static_cast<double>(shard::halo_exchange_fields(spec)));
  }

  const int weak_status = bench::emit(weak, cli);
  strong.print(std::cout);
  const int json_status =
      bench::emit_registry(registry, "BENCH_scaleout.json", cli);
  std::cout << "note: per-shard compute is thread CPU time, so efficiency "
               "stays meaningful when simulated shards time-slice fewer "
               "physical cores; exchange wire time is modelled over "
               "per-device DMA queues (measured halo bytes, modelled "
               "links).\n";
  if (bit_exact != 1.0) {
    std::cerr << "BIT-EXACTNESS FAILURE: sharded results diverged from the "
                 "single-device facade\n";
    return 1;
  }
  return weak_status != 0 ? weak_status : json_status;
}
