// Extension beyond the paper (clearly marked as such): MONC runs MPI-
// decomposed, so a production deployment would put one accelerator per
// rank. Projects strong scaling of the overlapped Fig. 6 configuration
// across ranks, charging each timestep the per-rank advection (from the
// calibrated device model) plus the halo exchange over a 100 Gb/s fabric.
#include "bench_common.hpp"
#include <iostream>

#include "pw/decomp/decomposition.hpp"
#include "pw/exp/devices.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();
  const grid::GridDims dims = grid::paper_grid(
      static_cast<std::size_t>(cli.get_int("cells", 268)));
  const double network_gbps = cli.get_double("network_gbps", 12.5);  // 100 Gb/s

  util::Table t(
      "Extension (not in the paper): strong scaling with one Alveo U280 "
      "per rank, " + util::format_cells(dims.cells()) +
      " cells, halo exchange over a 100 Gb/s fabric");
  t.header({"Ranks", "Process grid", "Per-rank cells", "Advect (GFLOPS)",
            "Halo traffic / step", "Exchange time", "Scaling efficiency"});

  double single_rank_seconds = 0.0;
  for (std::size_t ranks : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto decomposition = decomp::Decomposition::auto_grid(dims, ranks);
    // Every rank advects its own patch on its own board, concurrently.
    const auto& widest = decomposition.extent(0);
    const grid::GridDims rank_dims{widest.nx(), widest.ny(), dims.nz};
    const auto run = exp::run_fpga_overall(devices.alveo,
                                           devices.alveo_power, rank_dims,
                                           /*overlapped=*/true);

    const std::size_t halo_bytes =
        3 * decomposition.halo_exchange_bytes_per_field();
    const double exchange_seconds =
        static_cast<double>(halo_bytes) /
        (network_gbps * 1e9 * static_cast<double>(ranks));
    const double step_seconds = run.seconds + exchange_seconds;

    if (ranks == 1) {
      single_rank_seconds = step_seconds;
    }
    const double efficiency = single_rank_seconds /
                              (step_seconds * static_cast<double>(ranks));
    const double total_gflops =
        static_cast<double>(ranks) * run.gflops;

    t.row({std::to_string(ranks),
           std::to_string(decomposition.px()) + "x" +
               std::to_string(decomposition.py()),
           util::format_cells(rank_dims.cells()),
           util::format_double(total_gflops, 1),
           util::format_bytes(static_cast<double>(halo_bytes)),
           util::format_double(exchange_seconds * 1e3, 2) + " ms",
           util::format_double(efficiency * 100.0, 0) + "%"});
  }
  const int status = bench::emit(t, cli);
  std::cout << "note: super-linear efficiency at 268M+ cells is real in the "
               "model — splitting the domain lets per-rank data drop back "
               "into the 8GB HBM2, escaping the single-board DDR cliff of "
               "Fig. 6.\n";
  return status;
}
