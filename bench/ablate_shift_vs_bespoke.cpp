// Ablation of the paper's central design trade (§II.A/§III): the general
// 27-point 3D shift buffer (simple, portable, more on-chip RAM) versus the
// previous work's bespoke minimal cache (less RAM, "very complicated"
// code). Compares resource estimates and per-device kernel fit.
#include "bench_common.hpp"
#include "pw/baseline/delay_line.hpp"
#include "pw/exp/devices.hpp"
#include "pw/fpga/resource_estimate.hpp"
#include "pw/kernel/shift_buffer.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();

  util::Table t(
      "Ablation: general 3D shift buffer vs bespoke minimal cache "
      "(chunk_y=64, nz=64)");
  t.header({"Variant", "Vendor", "Logic cells", "Block RAM (KB)", "DSP",
            "Kernels that fit", "Buffer doubles/field"});

  kernel::KernelConfig config;
  config.chunk_y = 64;

  const kernel::ShiftBuffer3D shift_probe(66, 66);
  const baseline::DelayLineStencil delay_probe(66, 66);
  const std::size_t shift_doubles = shift_probe.slab_doubles() +
                                    shift_probe.window_doubles() +
                                    kernel::ShiftBuffer3D::register_doubles();
  const std::size_t delay_doubles = delay_probe.storage_doubles();

  for (bool bespoke : {false, true}) {
    fpga::KernelEstimateOptions options;
    options.nz = 64;
    options.bespoke_cache = bespoke;
    for (auto vendor : {fpga::Vendor::kXilinx, fpga::Vendor::kIntel}) {
      const auto usage = fpga::estimate_kernel(config, options, vendor);
      const auto& device =
          vendor == fpga::Vendor::kXilinx ? devices.alveo : devices.stratix;
      t.row({bespoke ? "bespoke cache [6,7]" : "3D shift buffer",
             vendor == fpga::Vendor::kXilinx ? "Xilinx" : "Intel",
             std::to_string(usage.logic_cells),
             util::format_double(usage.block_ram_bytes / 1024.0, 0),
             std::to_string(usage.dsp),
             std::to_string(fpga::max_kernels(device, usage)),
             std::to_string(bespoke ? delay_doubles : shift_doubles)});
    }
  }
  return bench::emit(t, cli);
}
