// The paper's design-methodology metric (§III): theoretical best GFLOPS of
// the dataflow machine as a function of clock frequency and column height —
// 18.86 GFLOPS at the Alveo's 300 MHz / 64 levels, 25.02 GFLOPS at the
// Stratix 10's single-kernel 398 MHz.
#include "bench_common.hpp"
#include "pw/fpga/perf_model.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);

  util::Table t(
      "Theoretical peak GFLOPS of the dataflow design "
      "(one cell per cycle; 63 FLOPs, 55 at column top)");
  t.header({"Clock (MHz)", "nz=32", "nz=64", "nz=128", "6 kernels @ nz=64",
            "5 kernels @ nz=64"});
  for (double mhz : {200.0, 250.0, 300.0, 398.0, 450.0}) {
    const double hz = mhz * 1e6;
    t.row({util::format_double(mhz, 0),
           util::format_double(fpga::theoretical_gflops(32, hz), 2),
           util::format_double(fpga::theoretical_gflops(64, hz), 2),
           util::format_double(fpga::theoretical_gflops(128, hz), 2),
           util::format_double(fpga::theoretical_gflops(64, hz, 6), 2),
           util::format_double(fpga::theoretical_gflops(64, hz, 5), 2)});
  }
  return bench::emit(t, cli);
}
