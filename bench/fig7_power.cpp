// Regenerates paper Fig. 7: average power draw during the overlapped runs.
#include "bench_common.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  return bench::emit(exp::fig7(exp::paper_devices()), cli);
}
