// Real measurements on THIS machine (no models): the threaded CPU baseline
// across thread counts and the software-executed dataflow datapath, for a
// range of grid sizes. The equivalent of the paper's CPU rows, measured
// rather than profiled.
#include <memory>

#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/advect/cpu_baseline.hpp"
#include "pw/advect/flops.hpp"
#include "pw/kernel/fused.hpp"
#include "pw/util/thread_pool.hpp"
#include "pw/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));

  util::Table t("Measured on this host: PW advection GFLOPS (best of " +
                std::to_string(repeats) + ")");
  t.header({"Grid", "Cells", "serial reference", "CPU baseline (all threads)",
            "dataflow datapath (fused)"});

  util::ThreadPool pool;
  for (const grid::GridDims dims :
       {grid::GridDims{64, 64, 64}, grid::GridDims{128, 128, 64},
        grid::GridDims{256, 128, 64}}) {
    auto state = std::make_unique<grid::WindState>(dims);
    grid::init_random(*state, 1);
    const auto coefficients = advect::PwCoefficients::from_geometry(
        grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
    auto out = std::make_unique<advect::SourceTerms>(dims);
    const double flops = static_cast<double>(advect::total_flops(dims));

    auto best_of = [&](auto&& body) {
      double best = 0.0;
      for (int r = 0; r < repeats; ++r) {
        util::WallTimer timer;
        body();
        best = std::max(best, flops / timer.seconds() / 1e9);
      }
      return best;
    };

    const double serial = best_of([&] {
      advect::advect_reference(*state, coefficients, *out);
    });
    advect::CpuAdvectorBaseline baseline(pool);
    const double threaded = best_of([&] {
      baseline.run(*state, coefficients, *out);
    });
    const double fused = best_of([&] {
      kernel::run_kernel_fused(*state, coefficients, *out,
                               kernel::KernelConfig{64});
    });

    t.row({std::to_string(dims.nx) + "x" + std::to_string(dims.ny) + "x" +
               std::to_string(dims.nz),
           util::format_cells(dims.cells()), util::format_double(serial, 2),
           util::format_double(threaded, 2) + " (" +
               std::to_string(pool.size()) + "t)",
           util::format_double(fused, 2)});
  }
  return bench::emit(t, cli);
}
