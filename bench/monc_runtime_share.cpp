// The paper's motivating measurement (§I): advection is the single longest
// running piece of MONC, ~40% of the model runtime. Runs the miniature
// MONC configuration and reports each component's measured share.
#include "bench_common.hpp"
#include "pw/monc/components.hpp"
#include "pw/monc/model.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 48));
  const auto nz = static_cast<std::size_t>(cli.get_int("nz", 48));
  const int steps = static_cast<int>(cli.get_int("steps", 10));

  monc::Model model(grid::Geometry::uniform({n, n, nz}, 100.0, 100.0, 50.0),
                    2026);
  model.add_component(monc::make_pw_advection(
      model.coefficients(), monc::AdvectionBackend::kReference));
  model.add_component(monc::make_scalar_advection(model.coefficients()));
  model.add_component(monc::make_buoyancy());
  model.add_component(monc::make_coriolis());
  model.add_component(monc::make_diffusion(5.0, model.geometry()));
  model.add_component(monc::make_damping(nz / 6, 100.0));

  for (int step = 0; step < steps; ++step) {
    model.step(0.1);
  }

  double total = 0.0;
  for (const auto& p : model.profile()) {
    total += p.seconds;
  }

  util::Table t("Mini-MONC component runtime share (" + std::to_string(n) +
                "x" + std::to_string(n) + "x" + std::to_string(nz) + ", " +
                std::to_string(steps) + " steps) — paper §I: advection ~40%");
  t.header({"Component", "Seconds", "Share"});
  for (const auto& p : model.profile()) {
    t.row({p.name, util::format_double(p.seconds, 4),
           util::format_double(100.0 * p.seconds / total, 1) + "%"});
  }
  t.row({"TOTAL (components)", util::format_double(total, 4), "100.0%"});
  return bench::emit(t, cli);
}
