// The paper's closing projection (§V): Versal AI engines could
// "considerably accelerate the arithmetic component of our advection
// kernel, and keeping the engines fed with data will be the key". Sweeps
// the number of fabric shift-buffer instances and shows which constraint
// binds, against the V100's 367.2 GFLOPS for context.
#include "bench_common.hpp"
#include "pw/fpga/versal.hpp"
#include "pw/gpu/v100.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const fpga::VersalProfile profile;
  const auto v100 = gpu::tesla_v100();

  util::Table t(
      "Future work (paper SV): Versal ACAP projection — AI engines (" +
      std::to_string(profile.ai_engines) + " x 8 SP FLOPs @ 1 GHz = " +
      util::format_double(profile.ai_engines * 8.0, 0) +
      " GFLOPS peak) fed by fabric shift buffers; V100 = " +
      util::format_double(v100.kernel_gflops, 1) + " GFLOPS");
  t.header({"Shift-buffer instances", "Precision", "Projected GFLOPS",
            "% of V100", "Binding constraint"});

  for (bool fp32 : {false, true}) {
    for (std::size_t instances : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const auto p = fpga::project_versal(profile, instances, fp32);
      t.row({std::to_string(instances), fp32 ? "fp32" : "fp64 (emulated)",
             util::format_double(p.projected_gflops, 1),
             util::format_double(100.0 * p.projected_gflops /
                                     v100.kernel_gflops, 0) + "%",
             p.binding_constraint});
    }
  }
  return bench::emit(t, cli);
}
