// The QoS storm: a 10^5-request open-loop, multi-tenant, mixed-kernel
// workload (Poisson arrivals, Zipf-popular scenario catalogue, one
// deliberately hoggish tenant) driven twice through a weighted-fair
// SolveService —
//
//   clean    no fault plan armed
//   faulted  an armed pw::fault plan: spurious latency and forced sheds at
//            serve.sched.push, transfer failures under serve.solve.* (the
//            retry / breaker / failover ladder runs mid-storm)
//
// and the SLO + invariant gauges check_bench_json.py gates on
// BENCH_storm.json:
//
//   storm.bench.p99_ms / p999_ms      served latency, clean storm
//   storm.bench.p99_ms_faulted        served latency with the plan armed
//   storm.bench.shed_fairness         1.0 iff the scheduler audit counted
//                                     zero unfair sheds in either storm
//                                     (a within-quota tenant shed while a
//                                     hog stayed admitted)
//   storm.bench.cache_within_cap      1.0 iff the tiered result cache's
//                                     peak bytes never exceeded its cap
//   storm.bench.requests              the offered request count (>= 1e5)
//
// Grids are small on purpose: the storm measures the serve tier (admission,
// scheduling, shedding, caching, coalescing) under throughput, not kernel
// FLOPs — bench/serve_throughput owns the compute-bound story.
//
// Flags: --requests=N --rate=HZ --catalogue=N --zipf=S --capacity=N
//        --workers=N --batch=N --cache_mb=N --seed=N --csv=PATH --json=PATH
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pw/api/request.hpp"
#include "pw/fault/injector.hpp"
#include "pw/serve/service.hpp"
#include "pw/serve/traffic.hpp"
#include "pw/util/cli.hpp"
#include "pw/util/timer.hpp"

namespace {

struct StormOutcome {
  pw::serve::ServiceReport report;
  pw::serve::TieredCacheStats cache;
  pw::serve::sched::Audit audit;
  double wall_s = 0.0;
};

/// Replays the traffic open-loop: submission paces to each arrival time
/// (sleeping only when meaningfully ahead) and never waits on completions.
StormOutcome run_storm(const pw::serve::TrafficSpec& spec,
                       const pw::serve::ServiceConfig& config,
                       const std::vector<pw::serve::TimedRequest>& traffic) {
  using namespace pw;
  serve::SolveService service(config);
  util::WallTimer timer;
  const auto start = std::chrono::steady_clock::now();
  for (const serve::TimedRequest& timed : traffic) {
    const auto due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(timed.arrival_s));
    if (due - std::chrono::steady_clock::now() > std::chrono::microseconds(200)) {
      std::this_thread::sleep_until(due);
    }
    service.submit(timed.request);  // open loop: the future is dropped
  }
  service.drain();
  StormOutcome outcome;
  outcome.wall_s = timer.seconds();
  outcome.report = service.report();
  outcome.cache = service.cache_stats().value_or(serve::TieredCacheStats{});
  outcome.audit = service.scheduler().audit();
  service.shutdown(true);
  (void)spec;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);

  // The workload: >= 1e5 requests, three tenants (tenant-2 is the hog:
  // triple arrival share, batch priority, same quota weight as everyone
  // else), Zipf-popular scenarios over every kernel and backend mix.
  serve::TrafficSpec spec;
  spec.requests = static_cast<std::size_t>(cli.get_int("requests", 100000));
  spec.arrival_rate_hz = cli.get_double("rate", 50000.0);
  spec.diurnal = cli.get_int("diurnal", 1) != 0;
  spec.diurnal_amplitude = 0.5;
  spec.diurnal_period_s = 1.0;
  spec.zipf_s = cli.get_double("zipf", 1.1);
  spec.catalogue = static_cast<std::size_t>(cli.get_int("catalogue", 384));
  spec.tenants = {
      {"tenant-0", 1.0, api::Priority::kInteractive},
      {"tenant-1", 1.0, api::Priority::kNormal},
      {"tenant-2", 3.0, api::Priority::kBatch},  // the hog
  };
  spec.trace.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  spec.trace.shapes = {{8, 8, 8}, {12, 12, 8}};
  spec.trace.kernels = {api::Kernel::kAdvectPw, api::Kernel::kDiffusion,
                        api::Kernel::kPoissonJacobi};
  const std::vector<serve::TimedRequest> traffic = serve::make_traffic(spec);

  serve::ServiceConfig config;
  config.scheduler = serve::sched::Policy::kWeightedFair;
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("capacity", 512));
  config.block_when_full = false;  // overload sheds, never stalls arrivals
  config.workers_per_backend =
      static_cast<std::size_t>(cli.get_int("workers", 4));
  config.max_batch = static_cast<std::size_t>(cli.get_int("batch", 16));
  // The byte cap is deliberately below what the entry caps could pin
  // (catalogue scenarios at ~25 KiB each), so byte-pressure evictions run
  // all storm long and the peak<=cap invariant is genuinely exercised.
  config.result_cache_capacity = 256;
  config.result_cache_bytes =
      static_cast<std::size_t>(cli.get_int("cache_mb", 4)) << 20;

  const StormOutcome clean = run_storm(spec, config, traffic);

  // The same storm with the fault plan armed: occasional slow admissions,
  // rare forced sheds at the push site, and a 1% transfer-failure rate
  // under the reference backend so the resilience ladder runs hot.
  fault::FaultPlan plan;
  plan.seed = spec.trace.seed;
  plan.rules.push_back({"serve.sched.push", fault::FaultKind::kSpuriousLatency,
                        0.001, 0, std::numeric_limits<std::uint64_t>::max(),
                        200e-6});
  plan.rules.push_back({"serve.sched.push", fault::FaultKind::kTransferFailure,
                        0.0005});
  plan.rules.push_back({"serve.solve.reference",
                        fault::FaultKind::kTransferFailure, 0.01});
  fault::FaultInjector injector(plan);
  StormOutcome faulted;
  {
    fault::ScopedArm arm(injector);
    faulted = run_storm(spec, config, traffic);
  }
  const fault::FaultReport fault_report = injector.report();

  const double p99_ms = clean.report.latency_s.p99 * 1e3;
  const double p999_ms = clean.report.latency_s.p999 * 1e3;
  const double p99_faulted_ms = faulted.report.latency_s.p99 * 1e3;
  const std::uint64_t unfair =
      clean.audit.unfair_sheds + faulted.audit.unfair_sheds;
  const double shed_fairness = unfair == 0 ? 1.0 : 0.0;
  const bool clean_within = clean.cache.peak_bytes <= clean.cache.byte_cap;
  const bool faulted_within =
      faulted.cache.peak_bytes <= faulted.cache.byte_cap;
  const double cache_within_cap = clean_within && faulted_within ? 1.0 : 0.0;

  util::Table table("QoS storm: " + std::to_string(spec.requests) +
                    " open-loop requests, weighted-fair scheduler");
  table.header({"storm", "wall [s]", "completed", "shed", "cache hits",
                "evictions", "p99 [ms]", "p999 [ms]"});
  const auto storm_row = [&](const char* name, const StormOutcome& o) {
    table.row({name, util::format_double(o.wall_s, 2),
               std::to_string(o.report.completed),
               std::to_string(o.report.rejected_backpressure +
                              o.report.shed_quota),
               std::to_string(o.report.result_cache_hits),
               std::to_string(o.cache.evictions),
               util::format_double(o.report.latency_s.p99 * 1e3, 3),
               util::format_double(o.report.latency_s.p999 * 1e3, 3)});
  };
  storm_row("clean", clean);
  storm_row("faulted", faulted);
  const int status = bench::emit(table, cli);

  std::cout << "shed fairness " << util::format_double(shed_fairness, 1)
            << " (unfair sheds: " << unfair << "), cache peak "
            << clean.cache.peak_bytes << " / cap " << clean.cache.byte_cap
            << " bytes, " << fault_report.injected
            << " faults injected in the faulted storm\n";
  for (const serve::TenantReportRow& tenant : clean.report.tenants) {
    std::cout << "  " << tenant.tenant << ": submitted " << tenant.submitted
              << ", admitted " << tenant.admitted << ", shed " << tenant.shed
              << ", p99 "
              << util::format_double(tenant.p99_latency_s * 1e3, 3) << " ms\n";
  }

  obs::MetricsRegistry registry;
  registry.gauge_set("storm.bench.requests",
                     static_cast<double>(spec.requests));
  registry.gauge_set("storm.bench.rate_hz", spec.arrival_rate_hz);
  registry.gauge_set("storm.bench.wall_s", clean.wall_s);
  registry.gauge_set("storm.bench.wall_s_faulted", faulted.wall_s);
  registry.gauge_set("storm.bench.p99_ms", p99_ms);
  registry.gauge_set("storm.bench.p999_ms", p999_ms);
  registry.gauge_set("storm.bench.p99_ms_faulted", p99_faulted_ms);
  registry.gauge_set("storm.bench.shed_fairness", shed_fairness);
  registry.gauge_set("storm.bench.cache_within_cap", cache_within_cap);
  registry.gauge_set("storm.bench.completed",
                     static_cast<double>(clean.report.completed));
  registry.gauge_set("storm.bench.shed",
                     static_cast<double>(clean.report.rejected_backpressure +
                                         clean.report.shed_quota));
  registry.gauge_set("storm.bench.cache_hits",
                     static_cast<double>(clean.report.result_cache_hits));
  registry.gauge_set("storm.bench.cache_evictions",
                     static_cast<double>(clean.cache.evictions));
  registry.gauge_set("storm.bench.cache_peak_bytes",
                     static_cast<double>(clean.cache.peak_bytes));
  registry.gauge_set("storm.bench.faults_injected",
                     static_cast<double>(fault_report.injected));
  for (const serve::TenantReportRow& tenant : clean.report.tenants) {
    registry.gauge_set("storm.bench.tenant." + tenant.tenant + ".admitted",
                       static_cast<double>(tenant.admitted));
    registry.gauge_set("storm.bench.tenant." + tenant.tenant + ".shed",
                       static_cast<double>(tenant.shed));
  }
  const int json_status =
      bench::emit_registry(registry, "BENCH_storm.json", cli);
  return status != 0 ? status : json_status;
}
