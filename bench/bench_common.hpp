#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "pw/obs/export.hpp"
#include "pw/obs/metrics.hpp"
#include "pw/util/cli.hpp"
#include "pw/util/table.hpp"

namespace pw::bench {

/// Prints a finished table and, when --csv=<path> was passed, writes it as
/// CSV too. Returns 0 for use as main's exit status.
inline int emit(const util::Table& table, const util::Cli& cli) {
  table.print(std::cout);
  if (auto path = cli.get("csv")) {
    std::ofstream out(*path);
    if (!out) {
      std::cerr << "cannot open " << *path << " for writing\n";
      return 1;
    }
    table.write_csv(out);
    std::cout << "csv written to " << *path << "\n";
  }
  return 0;
}

/// Dumps a bench's MetricsRegistry as a machine-readable JSON artefact —
/// the registry-backed successor to hand-rolled timing printouts. The
/// default path (e.g. "BENCH_table1.json", repo root when run through
/// scripts/reproduce.sh) can be overridden with --json=<path>; --json=-
/// prints to stdout instead. Returns 0 on success for use as an exit
/// status.
inline int emit_registry(const obs::MetricsRegistry& registry,
                         const std::string& default_path,
                         const util::Cli& cli) {
  const std::string path = cli.get_string("json", default_path);
  const std::string json = obs::to_json(registry);
  if (path == "-") {
    std::cout << json;
    return 0;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  out << json;
  std::cout << "metrics json written to " << path << "\n";
  return 0;
}

}  // namespace pw::bench
