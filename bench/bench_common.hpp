#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "pw/util/cli.hpp"
#include "pw/util/table.hpp"

namespace pw::bench {

/// Prints a finished table and, when --csv=<path> was passed, writes it as
/// CSV too. Returns 0 for use as main's exit status.
inline int emit(const util::Table& table, const util::Cli& cli) {
  table.print(std::cout);
  if (auto path = cli.get("csv")) {
    std::ofstream out(*path);
    if (!out) {
      std::cerr << "cannot open " << *path << " for writing\n";
      return 1;
    }
    table.write_csv(out);
    std::cout << "csv written to " << *path << "\n";
  }
  return 0;
}

}  // namespace pw::bench
