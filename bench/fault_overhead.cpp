// Fault-hook overhead: the pw::fault injection hooks are compiled into
// every layer unconditionally (streams, the OpenCL runtime, the serve
// path), so their *disarmed* cost must be provably negligible. This bench
// pins it three ways:
//
//   1. micro: the per-call cost of a disarmed fault::check() (one relaxed
//      atomic acquire load + branch), measured over tens of millions of
//      calls;
//   2. census: how many hook checks one served request actually performs,
//      counted exactly by arming a match-nothing plan (probability 0, so
//      behaviour is unchanged but the injector counts consultations);
//   3. budget: checks_per_request x check_ns as a fraction of the measured
//      per-request service time — the number scripts/check_bench_json.py
//      gates at < 1% (gauge fault.bench.overhead_frac).
//
// The analytic fraction is used instead of differencing two wall-clock
// trace replays because the hook cost (sub-nanosecond per check) drowns in
// run-to-run service jitter; the product of two tight measurements is the
// honest estimate.
//
// Flags: --requests=N --iters=N --seed=N --csv=PATH --json=PATH
#include <atomic>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pw/fault/injector.hpp"
#include "pw/serve/service.hpp"
#include "pw/serve/trace.hpp"
#include "pw/util/cli.hpp"
#include "pw/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);

  const std::size_t requests =
      static_cast<std::size_t>(cli.get_int("requests", 48));
  const std::uint64_t iters =
      static_cast<std::uint64_t>(cli.get_int("iters", 20'000'000));

  // --- 1. micro: disarmed fault::check() cost -----------------------------
  std::uint64_t sink = 0;
  util::WallTimer check_timer;
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (fault::check("bench.site")) {
      ++sink;  // never taken while disarmed; defeats dead-code elimination
    }
  }
  const double check_ns = check_timer.seconds() * 1e9 /
                          static_cast<double>(iters);
  if (sink != 0) {
    std::cerr << "disarmed check fired?!\n";
    return 1;
  }

  // --- 2. census + 3. budget over a served trace --------------------------
  serve::TraceSpec spec;
  spec.requests = requests;
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  spec.backends = {api::Backend::kFused, api::Backend::kCpuBaseline};
  spec.repeat_fraction = 0.0;  // every request computes: worst case
  const std::vector<api::SolveRequest> trace = serve::make_trace(spec);

  const auto replay = [&trace](obs::MetricsRegistry* metrics) {
    serve::ServiceConfig config;
    config.result_cache = false;
    config.queue_capacity = trace.size();
    config.metrics = metrics;
    serve::SolveService service(config);
    util::WallTimer timer;
    auto futures = service.submit_all(trace);
    service.drain();
    const double seconds = timer.seconds();
    for (auto& future : futures) {
      if (!future.wait().ok()) {
        std::cerr << "solve failed: " << future.wait().message << "\n";
        std::exit(1);
      }
    }
    return seconds;
  };

  obs::MetricsRegistry registry;
  const double disarmed_s = replay(&registry);

  // Armed with a probability-0 match-all rule: every hook site consults the
  // injector (so report().checks is an exact census of hook executions for
  // this workload) but nothing ever fires.
  fault::FaultPlan census_plan;
  fault::FaultRule census_rule;
  census_rule.site = "*";
  census_rule.probability = 0.0;
  census_plan.rules.push_back(census_rule);
  fault::FaultInjector injector(census_plan);
  double armed_s = 0.0;
  {
    fault::ScopedArm arm(injector);
    armed_s = replay(nullptr);
  }
  const fault::FaultReport census = injector.report();
  if (census.injected != 0) {
    std::cerr << "probability-0 rule injected?!\n";
    return 1;
  }

  const double checks_per_request =
      static_cast<double>(census.checks) / static_cast<double>(requests);
  const double request_s = disarmed_s / static_cast<double>(requests);
  const double overhead_frac =
      checks_per_request * check_ns * 1e-9 / request_s;

  util::Table table("Disarmed fault-hook overhead (" +
                    std::to_string(requests) + "-request trace)");
  table.header({"metric", "value"});
  table.row({"disarmed check [ns]", util::format_double(check_ns, 3)});
  table.row({"hook checks / request",
             util::format_double(checks_per_request, 1)});
  table.row({"service time / request [ms]",
             util::format_double(request_s * 1e3, 3)});
  table.row({"disarmed replay [s]", util::format_double(disarmed_s, 3)});
  table.row({"armed (p=0) replay [s]", util::format_double(armed_s, 3)});
  table.row({"analytic overhead", util::format_double(overhead_frac * 100.0, 4) + "%"});
  const int status = bench::emit(table, cli);

  registry.gauge_set("fault.bench.check_ns", check_ns);
  registry.gauge_set("fault.bench.checks_per_request", checks_per_request);
  registry.gauge_set("fault.bench.request_s", request_s);
  registry.gauge_set("fault.bench.disarmed_s", disarmed_s);
  registry.gauge_set("fault.bench.armed_s", armed_s);
  registry.gauge_set("fault.bench.overhead_frac", overhead_frac);
  const int json_status =
      bench::emit_registry(registry, "BENCH_fault.json", cli);
  return status != 0 ? status : json_status;
}
