// Regenerates paper Fig. 8: power efficiency (GFLOPS/W) of the overlapped
// runs.
#include "bench_common.hpp"
#include "pw/exp/experiments.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  return bench::emit(exp::fig8(exp::paper_devices()), cli);
}
