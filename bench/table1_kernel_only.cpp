// Regenerates paper Table I: kernel-only performance at 16M grid points for
// the CPU (1 and 24 cores), the V100, and a single HLS kernel on the Alveo
// U280 and Stratix 10. Pass --measure to additionally run the real threaded
// CPU baseline and the real dataflow kernel on this host (scaled-down grid).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/advect/cpu_baseline.hpp"
#include "pw/advect/flops.hpp"
#include "pw/exp/experiments.hpp"
#include "pw/kernel/fused.hpp"
#include "pw/util/thread_pool.hpp"
#include "pw/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();

  const int status = bench::emit(exp::table1(devices), cli);

  if (cli.get_bool("measure", false)) {
    // A host-measured sanity row: the real threaded baseline and the real
    // dataflow kernel on a 4M grid (milder memory footprint than 16M).
    const grid::GridDims dims = grid::paper_grid(4);
    auto state = std::make_unique<grid::WindState>(dims);
    grid::init_random(*state, 2026);
    const auto coefficients = advect::PwCoefficients::from_geometry(
        grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
    auto out = std::make_unique<advect::SourceTerms>(dims);

    util::ThreadPool pool;
    advect::CpuAdvectorBaseline baseline(pool);
    const auto cpu_stats = baseline.run(*state, coefficients, *out);

    util::WallTimer timer;
    kernel::run_kernel_fused(*state, coefficients, *out, kernel::KernelConfig{64});
    const double fused_s = timer.seconds();
    const double fused_gflops =
        static_cast<double>(advect::total_flops(dims)) / fused_s / 1e9;

    std::cout << "\n[measured on this host, 4M cells]\n"
              << "  threaded CPU baseline (" << pool.size()
              << " threads): " << util::format_double(cpu_stats.gflops, 2)
              << " GFLOPS\n"
              << "  dataflow kernel (fused, software): "
              << util::format_double(fused_gflops, 2) << " GFLOPS\n";
  }
  return status;
}
