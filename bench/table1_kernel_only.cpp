// Regenerates paper Table I: kernel-only performance at 16M grid points for
// the CPU (1 and 24 cores), the V100, and a single HLS kernel on the Alveo
// U280 and Stratix 10. Pass --measure to additionally run the real threaded
// CPU baseline and the real dataflow kernel on this host (scaled-down grid).
//
// Alongside the ASCII table, the run dumps a registry-backed JSON artefact
// (default BENCH_table1.json, override with --json=): GFLOPS and % of
// theoretical peak come straight from fpga::record_kernel_only, not hand
// math.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/advect/cpu_baseline.hpp"
#include "pw/advect/flops.hpp"
#include "pw/exp/experiments.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/kernel/fused.hpp"
#include "pw/util/thread_pool.hpp"
#include "pw/util/timer.hpp"

namespace {

pw::fpga::KernelOnlyInput single_kernel_input(
    const pw::fpga::FpgaDeviceProfile& device, const pw::grid::GridDims& dims) {
  pw::fpga::KernelOnlyInput input;
  input.dims = dims;
  input.config.chunk_y = 64;
  input.kernels = 1;
  input.clock_hz = device.clock_hz(1);
  input.memory = device.memories.front();
  input.launch_overhead_s = device.launch_overhead_s;
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();
  const grid::GridDims paper_dims = grid::paper_grid(16);

  obs::MetricsRegistry registry;

  // The two modelled FPGA rows, published through the registry (gauges
  // table1.<device>.gflops / .pct_of_theoretical_peak / ...).
  for (const auto* device : {&devices.alveo, &devices.stratix}) {
    const auto input = single_kernel_input(*device, paper_dims);
    const auto result = fpga::model_kernel_only(input);
    const std::string prefix =
        device == &devices.alveo ? "table1.alveo" : "table1.stratix";
    fpga::record_kernel_only(input, result, registry, prefix);
  }
  registry.gauge_set("table1.cpu_1core.gflops",
                     devices.cpu.gflops_single_core);
  registry.gauge_set("table1.cpu_24core.gflops", devices.cpu.gflops_all_cores);
  registry.gauge_set("table1.v100.gflops", devices.v100.kernel_gflops);
  registry.gauge_set("table1.cells", static_cast<double>(paper_dims.cells()));

  const int status = bench::emit(exp::table1(devices), cli);

  if (cli.get_bool("measure", false)) {
    // A host-measured sanity row: the real threaded baseline and the real
    // dataflow kernel on a 4M grid (milder memory footprint than 16M),
    // both instrumented through the same registry.
    const grid::GridDims dims = grid::paper_grid(4);
    auto state = std::make_unique<grid::WindState>(dims);
    grid::init_random(*state, 2026);
    const auto coefficients = advect::PwCoefficients::from_geometry(
        grid::Geometry::uniform(dims, 100.0, 100.0, 25.0));
    auto out = std::make_unique<advect::SourceTerms>(dims);

    util::ThreadPool pool;
    advect::CpuAdvectorBaseline baseline(pool);
    const auto cpu_stats = baseline.run(*state, coefficients, *out);
    registry.gauge_set("table1.measured.cpu_baseline.gflops",
                       cpu_stats.gflops);
    registry.gauge_set("table1.measured.cpu_baseline.threads",
                       static_cast<double>(pool.size()));

    kernel::KernelConfig config{64};
    config.metrics = &registry;
    util::WallTimer timer;
    kernel::run_kernel_fused(*state, coefficients, *out, config);
    const double fused_s = timer.seconds();
    const double fused_gflops =
        static_cast<double>(advect::total_flops(dims)) / fused_s / 1e9;
    registry.gauge_set("table1.measured.fused.gflops", fused_gflops);

    std::cout << "\n[measured on this host, 4M cells]\n"
              << "  threaded CPU baseline (" << pool.size()
              << " threads): " << util::format_double(cpu_stats.gflops, 2)
              << " GFLOPS\n"
              << "  dataflow kernel (fused, software): "
              << util::format_double(fused_gflops, 2) << " GFLOPS\n";
  }

  const int json_status =
      bench::emit_registry(registry, "BENCH_table1.json", cli);
  return status != 0 ? status : json_status;
}
