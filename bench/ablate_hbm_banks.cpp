// Ablation of the HBM2 port-to-bank mapping (paper §III.A: "connecting our
// kernel data ports across all the HBM2 banks", per Vitis best practice).
// Shows why: per-kernel or single-bank placements turn one 13 GB/s pseudo-
// channel into the bottleneck for the whole design.
#include "bench_common.hpp"
#include "pw/advect/flops.hpp"
#include "pw/fpga/hbm_banks.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const fpga::HbmBankSystem hbm;

  // Six kernels, six 512-bit ports each; per-port demand at 300 MHz is one
  // 8-byte value per cycle = 2.4 GB/s.
  const std::size_t kernels = 6;
  const std::size_t ports = 6;
  const double port_demand = 8.0 * 300e6 / 1e9;

  util::Table t(
      "Ablation: HBM2 port-to-bank mapping, 6 kernels x 6 ports @ 300 MHz "
      "(32 banks x " + util::format_double(hbm.per_bank_sustained_gbps, 0) +
      " GB/s)");
  t.header({"Mapping", "Busiest bank (ports)", "Busiest-bank demand",
            "Port throughput", "Per-kernel effective GB/s",
            "Kernel-only GFLOPS (6 kernels)"});

  for (auto mapping : {fpga::BankMapping::kSpread,
                       fpga::BankMapping::kPerKernel,
                       fpga::BankMapping::kSingleBank}) {
    const auto result =
        fpga::evaluate_mapping(hbm, mapping, kernels, ports, port_demand);
    // Translate the throughput fraction into the design's GFLOPS: at
    // fraction f each kernel streams f cells per cycle.
    const double gflops = static_cast<double>(kernels) *
                          advect::flops_per_cycle(64) * 300e6 *
                          result.port_throughput_fraction / 1e9;
    t.row({fpga::to_string(mapping),
           std::to_string(result.busiest_bank_ports),
           util::format_double(result.busiest_bank_demand_gbps, 1) + " GB/s",
           util::format_double(result.port_throughput_fraction * 100.0, 0) +
               "%",
           util::format_double(result.per_kernel_effective_gbps, 1),
           util::format_double(gflops, 1)});
  }
  return bench::emit(t, cli);
}
