// Ablation of the URAM experiment (paper §III.A): placing the shift buffer
// in UltraRAM imposes a two-cycle access latency, forcing the loop's
// initiation interval to 2 and halving throughput. Validated two ways: the
// analytic model and the cycle-level simulator on a reduced grid.
#include "bench_common.hpp"
#include "pw/advect/coefficients.hpp"
#include "pw/advect/reference.hpp"
#include "pw/exp/devices.hpp"
#include "pw/fpga/perf_model.hpp"
#include "pw/fpga/resource_estimate.hpp"
#include "pw/grid/init.hpp"
#include "pw/kernel/cycle_stages.hpp"

int main(int argc, char** argv) {
  using namespace pw;
  const util::Cli cli(argc, argv);
  const auto devices = exp::paper_devices();
  const grid::GridDims dims = grid::paper_grid(16);

  util::Table t("Ablation: BRAM (II=1) vs URAM (II=2) shift buffer, Alveo");
  t.header({"Variant", "Modelled GFLOPS (16M)", "Cycle-sim cells/cycle",
            "BRAM KB / kernel", "URAM KB / kernel"});

  // Small grid for the cycle-level cross-check.
  const grid::GridDims sim_dims{8, 8, 16};
  grid::WindState state(sim_dims);
  grid::init_random(state, 7);
  const auto coefficients = advect::PwCoefficients::from_geometry(
      grid::Geometry::uniform(sim_dims, 100.0, 100.0, 25.0));

  for (unsigned ii : {1u, 2u}) {
    fpga::KernelOnlyInput input;
    input.dims = dims;
    input.config.chunk_y = 64;
    input.kernels = 1;
    input.clock_hz = devices.alveo.clock_hz(1);
    input.memory = devices.alveo.memories.front();
    input.shift_ii = ii;
    input.launch_overhead_s = devices.alveo.launch_overhead_s;
    const auto modelled = fpga::model_kernel_only(input);

    advect::SourceTerms out(sim_dims);
    kernel::CycleSimConfig sim;
    sim.kernel.chunk_y = 0;
    sim.shift_ii = ii;
    const auto cycle = kernel::run_kernel_cycle_sim(state, coefficients, out,
                                                    sim);

    fpga::KernelEstimateOptions options;
    options.nz = dims.nz;
    options.shift_buffer_in_uram = ii == 2;
    const auto usage = fpga::estimate_kernel(input.config, options,
                                             fpga::Vendor::kXilinx);

    t.row({ii == 1 ? "BRAM, II=1" : "URAM, II=2",
           util::format_double(modelled.gflops, 2),
           util::format_double(cycle.cells_per_cycle(), 3),
           util::format_double(usage.block_ram_bytes / 1024.0, 0),
           util::format_double(usage.large_ram_bytes / 1024.0, 0)});
  }
  return bench::emit(t, cli);
}
